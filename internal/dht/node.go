package dht

import (
	"sort"
	"sync"
	"time"

	"repro/internal/dsim"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/p2p"
	"repro/internal/p2p/codec"
	"repro/internal/query"
	"repro/internal/trace"
	"repro/internal/transport"
)

// storeChunk bounds records per STORE frame, like the register-batch
// chunking, so one bulk publication cannot exceed a transport's frame
// limit.
const storeChunk = 512

// Node is one DHT peer: a p2p.Network whose Publish/Search/Unpublish
// route through the keyspace instead of a server or a flood. The
// local index.Store holds the node's own shared objects (as on every
// protocol); the record store holds the slices of the distributed
// index this node is a closest-k holder of.
type Node struct {
	ep      transport.Endpoint
	store   *index.Store
	cfg     Config
	self    ID
	table   *Table
	records *recordStore
	pending *p2p.PendingTable
	clk     dsim.Clock
	cdc     codec.Codec

	mu     sync.RWMutex
	attach p2p.AttachmentProvider
	tracer *trace.Tracer
	closed bool

	// annMu guards lastAnnounce: per-key memory of the last announce
	// (holder set and instant), which is what lets Refresh skip
	// republishing keys whose replicas are still where they were put.
	annMu        sync.Mutex
	lastAnnounce map[ID]announceState

	// Telemetry handles, resolved by SetMetrics (default: a private
	// registry, preserving per-node semantics for LookupCounters).
	reg            *metrics.Registry
	nm             *p2p.NodeMetrics
	mLookups       *metrics.Counter
	mRounds        *metrics.Counter
	mContacted     *metrics.Counter
	mFanout        *metrics.Counter
	mShortcircuits *metrics.Counter
	mCacheStores   *metrics.Counter
	mKeySplits     *metrics.Counter
	mRepubSkipped  *metrics.Counter
}

// announceState remembers one key's last replication: who got the
// records and when.
type announceState struct {
	holders []transport.PeerID
	at      time.Time
}

var _ p2p.Network = (*Node)(nil)

// NewNode attaches a DHT node to the network. store holds the peer's
// shared objects; cfg's zero value selects the package defaults.
// Topology comes from Bootstrap (the simulator wires it; over TCP a
// bootstrap list plays the same role).
func NewNode(ep transport.Endpoint, store *index.Store, cfg Config) *Node {
	cfg = cfg.withDefaults()
	self := NodeIDFor(ep.ID())
	n := &Node{
		ep:           ep,
		store:        store,
		cfg:          cfg,
		self:         self,
		table:        NewTable(self, cfg.K),
		records:      newRecordStore(cfg.RecordTTL, cfg.MaxRecordsPerKey),
		pending:      p2p.NewPendingTable(),
		clk:          dsim.Wall,
		cdc:          codec.Default,
		lastAnnounce: make(map[ID]announceState),
	}
	n.SetMetrics(metrics.NewRegistry())
	ep.SetHandler(n.handle)
	return n
}

// SetMetrics points the node's telemetry at reg: the dht.* lookup and
// replication counters, the protocol-labeled p2p.* families (label
// "dht"), and the record store's expiry counter. Like SetClock, call
// before traffic starts. The default is a private registry, so
// LookupCounters stays per-node unless a shared registry is injected.
func (n *Node) SetMetrics(reg *metrics.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reg = reg
	n.nm = p2p.NewNodeMetrics(reg, "dht")
	n.mLookups = reg.Counter("dht.lookups")
	n.mRounds = reg.Counter("dht.lookup_rounds")
	n.mContacted = reg.Counter("dht.peers_contacted")
	n.mFanout = reg.Counter("dht.store_fanout")
	n.mShortcircuits = reg.Counter("dht.lookup_shortcircuits")
	n.mCacheStores = reg.Counter("dht.cache_stores")
	n.mKeySplits = reg.Counter("dht.key_splits")
	n.mRepubSkipped = reg.Counter("dht.republishes_skipped")
	n.records.setCounters(
		reg.Counter("dht.records_expired"),
		reg.Counter("dht.records_evicted"),
		reg.Counter("dht.cache_hits"),
	)
}

// SetTracer installs the node's span recorder (nil disables tracing,
// the default). Like SetClock, call before traffic starts.
func (n *Node) SetTracer(t *trace.Tracer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tracer = t
}

func (n *Node) tr() *trace.Tracer {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.tracer
}

// PeerID implements p2p.Network.
func (n *Node) PeerID() transport.PeerID { return n.ep.ID() }

// ID returns the node's point in the keyspace.
func (n *Node) ID() ID { return n.self }

// SetClock installs the clock that paces RPC timeouts and record
// expiry (default wall). Call before traffic starts.
func (n *Node) SetClock(clk dsim.Clock) {
	if clk != nil {
		n.clk = clk
	}
}

// SetCodec installs the wire codec for this node's frames (default
// codec.Default). Like SetClock, call before traffic starts; every
// node in a deployment must agree on the codec.
func (n *Node) SetCodec(cd codec.Codec) {
	if cd != nil {
		n.cdc = cd
	}
}

// SetAttachmentProvider implements p2p.Network.
func (n *Node) SetAttachmentProvider(p p2p.AttachmentProvider) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.attach = p
}

// TableLen returns the number of live routing-table contacts.
func (n *Node) TableLen() int { return n.table.Len() }

// ClosestContacts returns up to count live routing-table contacts
// sorted by XOR distance to target — routing introspection for debug
// surfaces and experiments (who would this node's next lookup wave
// hit?).
func (n *Node) ClosestContacts(target ID, count int) []Contact {
	return n.table.Closest(target, count)
}

// RecordCount returns how many unexpired records this node holds for
// the keyspace.
func (n *Node) RecordCount() int { return n.records.len(n.clk.Now()) }

// Metrics returns the registry this node records into.
func (n *Node) Metrics() *metrics.Registry {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.reg
}

// Bootstrap seeds the routing table with the given peers and runs the
// Kademlia join: an iterative lookup of the node's own ID, which
// populates the table with the neighborhood and inserts this node
// into the tables of everyone contacted, followed by a refresh of
// every bucket farther out than the closest neighbor (a lookup of a
// deterministic ID in each bucket's range, per Kademlia §2.3).
//
// The bucket refreshes matter beyond coverage: they fill the far
// buckets with ordinary peers from each distance range *before* any
// key sees traffic. A full bucket never displaces a live contact, so
// the nodes closest to some later-popular key stay out of most
// routing tables (parked in replacement caches) exactly as in a
// long-lived deployment — without this step every table converged on
// the first hot key's holders and lookups collapsed to one hop.
func (n *Node) Bootstrap(peers ...transport.PeerID) {
	for _, p := range peers {
		if p != n.ep.ID() {
			n.table.Observe(p)
		}
	}
	n.lookup(trace.Context{}, n.self, nil)
	if cs := n.table.Closest(n.self, 1); len(cs) > 0 {
		nearest := BucketIndex(n.self, cs[0].ID)
		for b := nearest + 1; b < IDBits; b++ {
			n.lookup(trace.Context{}, RefreshTarget(n.self, b), nil)
		}
	}
}

// Publish implements p2p.Network: store locally, then replicate the
// metadata record onto the k nodes closest to the community key (the
// distributed index slice) and to the document key (provider
// lookups).
func (n *Node) Publish(doc *index.Document) error {
	if err := n.store.Put(doc); err != nil {
		return err
	}
	n.nm.Publishes.Inc()
	sp := n.tr().Root("publish")
	sp.SetCommunity(doc.CommunityID)
	defer sp.Finish()
	return n.announce(sp.Context(), []*index.Document{doc})
}

// PublishBatch implements p2p.Network: one local store batch, then
// one community-key lookup per distinct community (not per document)
// with the records chunked over STORE frames.
func (n *Node) PublishBatch(docs []*index.Document) error {
	if len(docs) == 0 {
		return nil
	}
	if err := n.store.PutBatch(docs); err != nil {
		return err
	}
	n.nm.Publishes.Add(int64(len(docs)))
	sp := n.tr().Root("publish")
	defer sp.Finish()
	return n.announce(sp.Context(), docs)
}

// announce replicates records for docs into the keyspace. STOREs are
// fire-and-forget: a lost or refused replica is repaired by the next
// Refresh, exactly like Kademlia republish.
func (n *Node) announce(tctx trace.Context, docs []*index.Document) error {
	if n.isClosed() {
		return p2p.ErrClosed
	}
	byComm := make(map[string][]Record)
	for _, doc := range docs {
		byComm[doc.CommunityID] = append(byComm[doc.CommunityID], recordFor(doc, n.ep.ID()))
	}
	comms := make([]string, 0, len(byComm))
	for c := range byComm {
		comms = append(comms, c)
	}
	sort.Strings(comms)
	for _, c := range comms {
		n.storeRecords(tctx, KeyForCommunity(c), byComm[c])
	}
	for _, doc := range docs {
		n.storeRecords(tctx, KeyForDoc(doc.ID), []Record{recordFor(doc, n.ep.ID())})
	}
	return nil
}

// recordFor extracts the replicated metadata of a document.
func recordFor(doc *index.Document, provider transport.PeerID) Record {
	return Record{
		DocID:       doc.ID,
		CommunityID: doc.CommunityID,
		Title:       doc.Title,
		Attrs:       doc.Attrs,
		Provider:    provider,
	}
}

// storeRecords looks up the key's closest nodes and replicates recs
// onto them.
func (n *Node) storeRecords(tctx trace.Context, key ID, recs []Record) {
	out := n.lookup(tctx, key, nil)
	n.storeToTargets(tctx, key, recs, out.contacts, false)
}

// storeToTargets replicates recs onto targets (a key's closest nodes,
// already looked up). The node keeps a local replica too when it
// belongs to the key's neighborhood (fewer than k known holders, or
// self closer than the k-th) — slight over-replication beats a
// coverage hole. split marks hot-key migration STOREs (relaxed
// provenance on the receiver; not remembered for adaptive refresh,
// which tracks only this node's own announcements).
func (n *Node) storeToTargets(tctx trace.Context, key ID, recs []Record, targets []Contact, split bool) {
	if len(targets) < n.cfg.K || CompareDistance(n.self, targets[len(targets)-1].ID, key) < 0 {
		n.records.put(key, recs, n.clk.Now())
	}
	if !split {
		st := announceState{holders: contactPeers(targets), at: n.clk.Now()}
		n.annMu.Lock()
		n.lastAnnounce[key] = st
		n.annMu.Unlock()
	}
	// Chunk payloads are marshaled once, then replicated target-major so
	// each replica is one trace span covering all its chunk frames.
	payloads := make([][]byte, 0, (len(recs)+storeChunk-1)/storeChunk)
	for start := 0; start < len(recs); start += storeChunk {
		end := start + storeChunk
		if end > len(recs) {
			end = len(recs)
		}
		chunk := storePayload{Key: key, Records: recs[start:end], Split: split}
		payloads = append(payloads, n.cdc.Encode(&chunk))
	}
	for _, t := range targets {
		sp := n.tr().Start(tctx, "store")
		sp.SetPeer(string(t.Peer))
		sctx := sp.ContextOr(tctx)
		for _, payload := range payloads {
			n.mFanout.Inc()
			err := n.ep.Send(transport.Message{To: t.Peer, Type: MsgStore, Payload: payload,
				TraceID: sctx.Trace, SpanID: sctx.Span})
			sp.AddMsgs(1, int64(len(payload)))
			if err != nil {
				sp.SetErr(err)
				if transport.IsPeerDead(err) {
					n.table.Remove(t.Peer)
				}
			}
		}
		sp.Finish()
	}
}

// cacheStore replicates a complete, filter-tagged result set onto the
// closest observed non-holder: Kademlia's caching STORE. One target,
// halved TTL on the receiver, never republished. Unlike replica
// STOREs the set is never chunked: the receiver installs it
// atomically (completeness is the whole point of a cached set), so it
// must arrive as one frame.
func (n *Node) cacheStore(tctx trace.Context, key ID, target Contact, recs []Record, filter string) {
	sp := n.tr().Start(tctx, "cache-store")
	sp.SetPeer(string(target.Peer))
	sctx := sp.ContextOr(tctx)
	frame := storePayload{Key: key, Records: recs, Cached: true, Filter: filter}
	payload := n.cdc.Encode(&frame)
	err := n.ep.Send(transport.Message{To: target.Peer, Type: MsgStore, Payload: payload,
		TraceID: sctx.Trace, SpanID: sctx.Span})
	sp.AddMsgs(1, int64(len(payload)))
	if err != nil {
		sp.SetErr(err)
		if transport.IsPeerDead(err) {
			n.table.Remove(target.Peer)
		}
	}
	n.mCacheStores.Inc()
	sp.Finish()
}

// maybeSplit checks whether a primary STORE pushed a main community
// key over the split threshold and, if so, spills it. Only community
// keys split: document keys hold one document's providers, and
// sub-keys live in their own derive domain so a spill can never
// cascade.
func (n *Node) maybeSplit(key ID, recs []Record, count int) {
	if n.cfg.SplitThreshold <= 0 || count < n.cfg.SplitThreshold || len(recs) == 0 {
		return
	}
	communityID := recs[0].CommunityID
	if communityID == "" || KeyForCommunity(communityID) != key {
		return
	}
	n.splitKey(key, communityID)
}

// splitKey spills a hot key: every primary record under it migrates to
// its attribute-hash sub-key's neighborhood, and FIND_VALUE replies
// advertise the split from now on so queriers fan in. The key keeps
// absorbing STOREs afterwards (publishers don't know about the split)
// and spills again whenever the buffer refills — so holder state under
// the hot key stays bounded by the threshold while lookups keep full
// recall via buffered records plus sub-key fan-in. Cached path copies
// are not migrated (they age out on their own), and unpublishes that
// miss a migrated record converge via TTL expiry like any other stale
// replica.
func (n *Node) splitKey(key ID, communityID string) {
	fanout := n.cfg.SplitFanout
	n.records.markSplit(key, fanout)
	moved := n.records.takePrimary(key, n.clk.Now())
	if len(moved) == 0 {
		return
	}
	n.mKeySplits.Inc()
	sp := n.tr().Root("key-split")
	sp.SetCommunity(communityID)
	defer sp.Finish()
	tctx := sp.Context()
	byShard := make(map[int][]Record, fanout)
	for _, rec := range moved {
		shard := ShardOf(rec.DocID, fanout)
		byShard[shard] = append(byShard[shard], rec)
	}
	for shard := 0; shard < fanout; shard++ {
		recs := byShard[shard]
		if len(recs) == 0 {
			continue
		}
		out := n.lookup(tctx, KeyForCommunityShard(communityID, shard), nil)
		n.storeToTargets(tctx, KeyForCommunityShard(communityID, shard), recs, out.contacts, true)
	}
}

// Unpublish implements p2p.Network: withdraw the record from both
// keys' neighborhoods. Replicas on nodes that miss the unstore (loss,
// stale holders) age out at RecordTTL.
func (n *Node) Unpublish(id index.DocID) error {
	if n.isClosed() {
		return p2p.ErrClosed
	}
	sp := n.tr().Root("unpublish")
	defer sp.Finish()
	tctx := sp.Context()
	doc, err := n.store.Get(id)
	n.store.Delete(id)
	if err == nil {
		n.unstore(tctx, KeyForCommunity(doc.CommunityID), id)
	}
	n.unstore(tctx, KeyForDoc(id), id)
	return nil
}

func (n *Node) unstore(tctx trace.Context, key ID, id index.DocID) {
	out := n.lookup(tctx, key, nil)
	n.records.remove(key, id, n.ep.ID())
	frame := unstorePayload{Key: key, DocID: id, Provider: n.ep.ID()}
	payload := n.cdc.Encode(&frame)
	for _, t := range out.contacts {
		sp := n.tr().Start(tctx, "unstore")
		sp.SetPeer(string(t.Peer))
		sctx := sp.ContextOr(tctx)
		_ = n.ep.Send(transport.Message{To: t.Peer, Type: MsgUnstore, Payload: payload,
			TraceID: sctx.Trace, SpanID: sctx.Span})
		sp.AddMsgs(1, int64(len(payload)))
		sp.Finish()
	}
}

// Search implements p2p.Network: one iterative FIND_VALUE toward the
// community key. Holders filter server-side, the caller unions the
// replicas (plus its own held slice and its own store), dedupes by
// (DocID, Provider), and returns results in canonical order with
// Hops set to the lookup's round count. Unlike the centralized
// protocol there is no single point whose loss fails the query:
// under loss the lookup routes around unresponsive nodes and degrades
// gracefully instead of erroring.
func (n *Node) Search(communityID string, f query.Filter, opts p2p.SearchOptions) ([]p2p.Result, error) {
	if n.isClosed() {
		n.nm.CountError(p2p.ErrClosed)
		return nil, p2p.ErrClosed
	}
	if f == nil {
		f = query.MatchAll{}
	}
	start := n.clk.Now()
	sp := n.tr().Start(opts.Trace, "search")
	sp.SetCommunity(communityID)
	defer sp.Finish()
	key := KeyForCommunity(communityID)
	filterStr := f.String()
	tctx := sp.ContextOr(opts.Trace)
	out := n.lookup(tctx, key, &valueQuery{
		communityID: communityID,
		filter:      filterStr,
		limit:       opts.Limit,
		stopOnValue: n.cfg.CacheRecords,
	})
	merged := make(map[recordKey]Record, len(out.records))
	for _, rec := range out.records {
		// Holders filter server-side; re-check here so a skewed or
		// malicious holder cannot inject non-matching records.
		if rec.CommunityID != communityID || !f.Match(rec.Attrs) {
			continue
		}
		merged[recordKey{rec.DocID, rec.Provider}] = rec
	}
	local, _ := n.records.get(key, n.clk.Now(), communityID, filterStr, f, 0)
	for _, rec := range local {
		merged[recordKey{rec.DocID, rec.Provider}] = rec
	}
	for _, doc := range n.store.Search(communityID, f, 0) {
		rec := recordFor(doc, n.ep.ID())
		merged[recordKey{rec.DocID, rec.Provider}] = rec
	}
	recs := make([]Record, 0, len(merged))
	for _, rec := range merged {
		recs = append(recs, rec)
	}
	sortRecords(recs)
	// Caching STORE: replicate the verified result set onto the
	// closest observed non-holder, so the next querier for this filter
	// terminates there without touching the k holders. Only complete
	// sets are cached — a limit-truncated one would poison unlimited
	// queries for the same filter.
	if n.cfg.CacheRecords && opts.Limit == 0 && !out.limited &&
		out.hasCacheTarget && len(out.records) > 0 && len(recs) > 0 {
		n.cacheStore(tctx, key, out.cacheTarget, recs, filterStr)
	}
	if opts.Limit > 0 && len(recs) > opts.Limit {
		recs = recs[:opts.Limit]
	}
	results := make([]p2p.Result, len(recs))
	for i, rec := range recs {
		results[i] = p2p.Result{
			DocID:       rec.DocID,
			Provider:    rec.Provider,
			CommunityID: rec.CommunityID,
			Title:       rec.Title,
			Attrs:       rec.Attrs,
			Hops:        out.rounds,
		}
	}
	n.nm.ObserveSearch(n.clk, start, len(results))
	return results, nil
}

// Providers returns the provider records replicated under a
// document's key: the DocID-keyed half of the keyspace.
func (n *Node) Providers(id index.DocID) []Record {
	sp := n.tr().Root("providers")
	defer sp.Finish()
	out := n.lookup(sp.Context(), KeyForDoc(id), &valueQuery{filter: query.MatchAll{}.String()})
	merged := make(map[recordKey]Record, len(out.records))
	for _, rec := range out.records {
		merged[recordKey{rec.DocID, rec.Provider}] = rec
	}
	localProv, _ := n.records.get(KeyForDoc(id), n.clk.Now(), "", query.MatchAll{}.String(), nil, 0)
	for _, rec := range localProv {
		merged[recordKey{rec.DocID, rec.Provider}] = rec
	}
	recs := make([]Record, 0, len(merged))
	for _, rec := range merged {
		if rec.DocID == id {
			recs = append(recs, rec)
		}
	}
	sortRecords(recs)
	return recs
}

// Retrieve implements p2p.Network via the shared direct fetch
// protocol.
func (n *Node) Retrieve(id index.DocID, from transport.PeerID) (*index.Document, error) {
	if from == n.PeerID() {
		return n.store.Get(id)
	}
	sp := n.tr().Root("fetch")
	sp.SetPeer(string(from))
	defer sp.Finish()
	doc, err := p2p.RetrieveFrom(n.cdc, n.clk, n.ep, n.pending, &sp, id, from, 0)
	if err != nil {
		n.nm.CountError(err)
		return nil, err
	}
	n.nm.Fetches.Inc()
	return doc, nil
}

// RetrieveAttachment implements p2p.Network.
func (n *Node) RetrieveAttachment(uri string, from transport.PeerID) ([]byte, error) {
	sp := n.tr().Root("attachment")
	sp.SetPeer(string(from))
	defer sp.Finish()
	return p2p.RetrieveAttachmentFrom(n.cdc, n.clk, n.ep, n.pending, &sp, uri, from, 0)
}

// CheckLiveness probes the least-recently-seen contact of every
// bucket and evicts the ones that fail to answer, promoting
// replacement-cache candidates into the freed slots — the scheduled
// LRU eviction half of bucket maintenance. A successful probe rotates
// the contact to the fresh end (its pong is traffic), so repeated
// rounds sweep whole buckets. Returns how many contacts were evicted.
func (n *Node) CheckLiveness() int {
	evicted := 0
	for _, c := range n.table.Oldest() {
		if !n.pingPeer(c.Peer) {
			n.table.Remove(c.Peer)
			evicted++
		}
	}
	return evicted
}

// pingPeer probes one contact. Under message loss a live contact can
// fail the probe and be evicted; it re-enters the table on next
// contact, as in Kademlia.
func (n *Node) pingPeer(peer transport.PeerID) bool {
	reqID, ch := n.pending.Create()
	ping := pingPayload{ReqID: reqID}
	err := n.ep.Send(transport.Message{
		To:      peer,
		Type:    MsgPing,
		Payload: n.cdc.Encode(&ping),
	})
	if err != nil {
		n.pending.Drop(reqID)
		return false
	}
	if _, err := p2p.Await(n.clk, n.ep.Synchronous(), ch, n.cfg.RPCTimeout); err != nil {
		n.pending.Drop(reqID)
		return false
	}
	return true
}

// Refresh is the DHT's rehome-equivalent, run on the caller's
// schedule (the scenario driver paces it on the virtual clock):
// bucket repair (CheckLiveness plus a self-lookup that re-learns the
// neighborhood) followed by adaptive republication of the locally
// stored documents through p2p.ReannounceLocal. Adaptive: each key is
// first probed with a FIND_NODE lookup, and the STOREs are sent only
// when the holder set from the last announce is no longer intact
// (departures or displacement by closer arrivals) or the records are
// approaching expiry (half the TTL, so a skipped cycle can never let
// them lapse). Intact keys cost one lookup instead of lookup + k
// STORE fan-out, which is what keeps steady-state refresh traffic
// from dominating message totals.
func (n *Node) Refresh() error {
	if n.isClosed() {
		return p2p.ErrClosed
	}
	sp := n.tr().Root("refresh")
	defer sp.Finish()
	tctx := sp.Context()
	n.CheckLiveness()
	n.lookup(tctx, n.self, nil)
	return p2p.ReannounceLocal(n.store, func(docs []*index.Document) error {
		return n.reannounce(tctx, docs)
	})
}

// reannounce is announce's refresh-cycle variant: same grouping, but
// each key republishes only when reannounceKey decides it must.
func (n *Node) reannounce(tctx trace.Context, docs []*index.Document) error {
	if n.isClosed() {
		return p2p.ErrClosed
	}
	byComm := make(map[string][]Record)
	for _, doc := range docs {
		byComm[doc.CommunityID] = append(byComm[doc.CommunityID], recordFor(doc, n.ep.ID()))
	}
	comms := make([]string, 0, len(byComm))
	for c := range byComm {
		comms = append(comms, c)
	}
	sort.Strings(comms)
	for _, c := range comms {
		n.reannounceKey(tctx, KeyForCommunity(c), byComm[c])
	}
	for _, doc := range docs {
		n.reannounceKey(tctx, KeyForDoc(doc.ID), []Record{recordFor(doc, n.ep.ID())})
	}
	return nil
}

// reannounceKey republishes recs under key unless the last announce's
// holders are all still among the key's current closest nodes and the
// records are not yet halfway to expiry. The staleness check comes
// first because it needs no probe; the holder check reuses its probe
// lookup as the STORE targeting, so deciding "republish" costs no
// extra round-trips over announce.
func (n *Node) reannounceKey(tctx trace.Context, key ID, recs []Record) {
	if n.cfg.RepublishAlways {
		n.storeRecords(tctx, key, recs)
		return
	}
	n.annMu.Lock()
	st, known := n.lastAnnounce[key]
	n.annMu.Unlock()
	if !known || n.clk.Now().Sub(st.at) >= n.cfg.RecordTTL/2 {
		n.storeRecords(tctx, key, recs)
		return
	}
	out := n.lookup(tctx, key, nil)
	current := make(map[transport.PeerID]bool, len(out.contacts))
	for _, c := range out.contacts {
		current[c.Peer] = true
	}
	intact := len(st.holders) > 0
	for _, h := range st.holders {
		if !current[h] {
			intact = false
			break
		}
	}
	if intact {
		n.mRepubSkipped.Inc()
		return
	}
	n.storeToTargets(tctx, key, recs, out.contacts, false)
}

// Close implements p2p.Network.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	return n.ep.Close()
}

func (n *Node) isClosed() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.closed
}

func (n *Node) handle(msg transport.Message) {
	// Every inbound message is evidence its sender is alive: the
	// Kademlia rule that keeps routing state fresh for free.
	n.table.Observe(msg.From)
	switch msg.Type {
	case MsgPing:
		var req pingPayload
		if err := n.cdc.DecodeValue(&req, msg.Payload); err != nil {
			return
		}
		pong := pingPayload{ReqID: req.ReqID}
		_ = n.ep.Send(transport.Message{
			To:      msg.From,
			Type:    MsgPong,
			Payload: n.cdc.Encode(&pong),
		})
	case MsgFindNode:
		var req findNodePayload
		if err := n.cdc.DecodeValue(&req, msg.Payload); err != nil {
			return
		}
		sp, tctx := n.startSpan(msg, "findnode.serve")
		reply := findNodeReplyPayload{
			ReqID: req.ReqID,
			Peers: contactPeers(n.table.Closest(req.Target, n.cfg.K)),
		}
		payload := n.cdc.Encode(&reply)
		_ = n.ep.Send(transport.Message{
			To:      msg.From,
			Type:    MsgFindNodeReply,
			Payload: payload,
			TraceID: tctx.Trace,
			SpanID:  tctx.Span,
		})
		sp.AddMsgs(1, int64(len(payload)))
		sp.Finish()
	case MsgFindValue:
		var req findValuePayload
		if err := n.cdc.DecodeValue(&req, msg.Payload); err != nil {
			return
		}
		sp, tctx := n.startSpan(msg, "findvalue.serve")
		sp.SetCommunity(req.CommunityID)
		reply := findValueReplyPayload{
			ReqID: req.ReqID,
			Peers: contactPeers(n.table.Closest(req.Key, n.cfg.K)),
		}
		// An unparseable filter yields no records, never all of them:
		// the reply still carries contacts so the lookup can route on,
		// but failing open to the whole record set would let one
		// malformed query read the entire key.
		if f, err := query.Parse(req.Filter); err == nil {
			reply.Records, reply.Complete = n.records.get(req.Key, n.clk.Now(), req.CommunityID, req.Filter, f, req.Limit)
		}
		// Advertise a hot-key split so the querier fans into the
		// attribute-hash sub-keys holding the migrated records.
		reply.Split = n.records.splitFanout(req.Key)
		payload := n.cdc.Encode(&reply)
		_ = n.ep.Send(transport.Message{
			To:      msg.From,
			Type:    MsgFindValueReply,
			Payload: payload,
			TraceID: tctx.Trace,
			SpanID:  tctx.Span,
		})
		sp.AddMsgs(1, int64(len(payload)))
		sp.Finish()
	case MsgStore:
		var req storePayload
		if err := n.cdc.DecodeValue(&req, msg.Payload); err != nil {
			return
		}
		sp, _ := n.startSpan(msg, "store.serve")
		switch {
		case req.Cached:
			// A caching STORE relays third-party providers by design,
			// so the provider==sender rule cannot apply. The copies are
			// confined: halved TTL, filter-tagged, never republished,
			// first to be evicted — a forged cache pollutes one key for
			// half a TTL at worst, it cannot displace primaries.
			n.records.putCached(req.Key, req.Records, n.clk.Now(), req.Filter)
		case req.Split:
			// A hot-key migration relays the records of every publisher
			// that hit the split holder; same relaxation, but these are
			// primaries (the split holder gave its copies up).
			n.records.put(req.Key, req.Records, n.clk.Now())
		default:
			// Provenance: a peer may only store records it provides
			// itself (every legitimate publish/refresh does exactly
			// that), so one peer cannot forge records under another's
			// name.
			kept := req.Records[:0]
			for _, rec := range req.Records {
				if rec.Provider == msg.From {
					kept = append(kept, rec)
				}
			}
			count := n.records.put(req.Key, kept, n.clk.Now())
			n.maybeSplit(req.Key, kept, count)
		}
		sp.Finish()
	case MsgUnstore:
		var req unstorePayload
		if err := n.cdc.DecodeValue(&req, msg.Payload); err != nil {
			return
		}
		// Same provenance rule: only the providing peer can withdraw
		// its own record.
		if req.Provider != msg.From {
			return
		}
		sp, _ := n.startSpan(msg, "unstore.serve")
		n.records.remove(req.Key, req.DocID, req.Provider)
		sp.Finish()
	case MsgPong:
		reply := new(pingPayload)
		if n.cdc.DecodeValue(reply, msg.Payload) == nil {
			n.pending.Resolve(reply.ReqID, reply)
		}
	case MsgFindNodeReply:
		reply := new(findNodeReplyPayload)
		if n.cdc.DecodeValue(reply, msg.Payload) == nil {
			n.pending.Resolve(reply.ReqID, reply)
		}
	case MsgFindValueReply:
		reply := new(findValueReplyPayload)
		if n.cdc.DecodeValue(reply, msg.Payload) == nil {
			n.pending.Resolve(reply.ReqID, reply)
		}
	case p2p.MsgFetchReply, p2p.MsgAttachmentReply:
		p2p.ResolveRetrievalReply(n.cdc, n.pending, msg)
	case p2p.MsgFetch:
		p2p.ServeFetch(n.cdc, n.tr(), n.ep, n.store, msg)
	case p2p.MsgAttachment:
		n.mu.RLock()
		p := n.attach
		n.mu.RUnlock()
		p2p.ServeAttachment(n.cdc, n.tr(), n.ep, p, msg)
	}
}

// startSpan opens a handler span for an inbound traced frame and
// returns it with the context downstream sends should carry.
func (n *Node) startSpan(msg transport.Message, op string) (trace.ActiveSpan, trace.Context) {
	inCtx := trace.Context{Trace: msg.TraceID, Span: msg.SpanID}
	sp := n.tr().StartAt(inCtx, op, transport.ChainOffset(n.ep))
	sp.SetPeer(string(msg.From))
	return sp, sp.ContextOr(inCtx)
}

// contactPeers projects contacts to their peer IDs for the wire.
func contactPeers(cs []Contact) []transport.PeerID {
	out := make([]transport.PeerID, len(cs))
	for i, c := range cs {
		out[i] = c.Peer
	}
	return out
}
