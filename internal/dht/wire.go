package dht

// Binary wire format for the DHT payloads (see internal/p2p/codec).
// IDs travel as fixed 20-byte fields; everything else composes the
// shared codec primitives. Field order IS the wire format.

import (
	"repro/internal/index"
	"repro/internal/p2p/codec"
	"repro/internal/transport"
)

func init() {
	// Ping and pong carry the same frame (the pong echoes the ReqID).
	codec.Register(MsgPing, func() codec.Frame { return new(pingPayload) })
	codec.Register(MsgPong, func() codec.Frame { return new(pingPayload) })
	codec.Register(MsgFindNode, func() codec.Frame { return new(findNodePayload) })
	codec.Register(MsgFindNodeReply, func() codec.Frame { return new(findNodeReplyPayload) })
	codec.Register(MsgFindValue, func() codec.Frame { return new(findValuePayload) })
	codec.Register(MsgFindValueReply, func() codec.Frame { return new(findValueReplyPayload) })
	codec.Register(MsgStore, func() codec.Frame { return new(storePayload) })
	codec.Register(MsgUnstore, func() codec.Frame { return new(unstorePayload) })
}

func appendPeers(dst []byte, peers []transport.PeerID) []byte {
	dst = codec.AppendUvarint(dst, uint64(len(peers)))
	for _, p := range peers {
		dst = codec.AppendString(dst, string(p))
	}
	return dst
}

func readPeers(r *codec.Reader) []transport.PeerID {
	n := r.Len()
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]transport.PeerID, n)
	for i := range out {
		out[i] = transport.PeerID(r.String())
	}
	return out
}

func appendRecord(dst []byte, rec *Record) []byte {
	dst = codec.AppendString(dst, string(rec.DocID))
	dst = codec.AppendString(dst, rec.CommunityID)
	dst = codec.AppendString(dst, rec.Title)
	dst = codec.AppendAttrs(dst, rec.Attrs)
	return codec.AppendString(dst, string(rec.Provider))
}

func readRecord(r *codec.Reader, out *Record) {
	out.DocID = index.DocID(r.String())
	out.CommunityID = r.String()
	out.Title = r.String()
	out.Attrs = r.Attrs()
	out.Provider = transport.PeerID(r.String())
}

func appendRecords(dst []byte, recs []Record) []byte {
	dst = codec.AppendUvarint(dst, uint64(len(recs)))
	for i := range recs {
		dst = appendRecord(dst, &recs[i])
	}
	return dst
}

func readRecords(r *codec.Reader) []Record {
	n := r.Len()
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]Record, n)
	for i := range out {
		readRecord(r, &out[i])
	}
	return out
}

func (p *pingPayload) AppendBinary(dst []byte) []byte {
	return codec.AppendUvarint(dst, p.ReqID)
}

func (p *pingPayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.ReqID = r.Uvarint()
	return r.Err()
}

func (p *findNodePayload) AppendBinary(dst []byte) []byte {
	dst = codec.AppendUvarint(dst, p.ReqID)
	return append(dst, p.Target[:]...)
}

func (p *findNodePayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.ReqID = r.Uvarint()
	r.Fixed(p.Target[:])
	return r.Err()
}

func (p *findNodeReplyPayload) AppendBinary(dst []byte) []byte {
	dst = codec.AppendUvarint(dst, p.ReqID)
	return appendPeers(dst, p.Peers)
}

func (p *findNodeReplyPayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.ReqID = r.Uvarint()
	p.Peers = readPeers(r)
	return r.Err()
}

func (p *findValuePayload) AppendBinary(dst []byte) []byte {
	dst = codec.AppendUvarint(dst, p.ReqID)
	dst = append(dst, p.Key[:]...)
	dst = codec.AppendString(dst, p.CommunityID)
	dst = codec.AppendString(dst, p.Filter)
	return codec.AppendUvarint(dst, uint64(p.Limit))
}

func (p *findValuePayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.ReqID = r.Uvarint()
	r.Fixed(p.Key[:])
	p.CommunityID = r.String()
	p.Filter = r.String()
	p.Limit = int(r.Uvarint())
	return r.Err()
}

func (p *findValueReplyPayload) AppendBinary(dst []byte) []byte {
	dst = codec.AppendUvarint(dst, p.ReqID)
	dst = appendRecords(dst, p.Records)
	dst = appendPeers(dst, p.Peers)
	dst = codec.AppendUvarint(dst, uint64(p.Split))
	return codec.AppendBool(dst, p.Complete)
}

func (p *findValueReplyPayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	p.ReqID = r.Uvarint()
	p.Records = readRecords(r)
	p.Peers = readPeers(r)
	p.Split = int(r.Uvarint())
	p.Complete = r.Bool()
	return r.Err()
}

func (p *storePayload) AppendBinary(dst []byte) []byte {
	dst = append(dst, p.Key[:]...)
	dst = appendRecords(dst, p.Records)
	dst = codec.AppendBool(dst, p.Cached)
	dst = codec.AppendString(dst, p.Filter)
	return codec.AppendBool(dst, p.Split)
}

func (p *storePayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	r.Fixed(p.Key[:])
	p.Records = readRecords(r)
	p.Cached = r.Bool()
	p.Filter = r.String()
	p.Split = r.Bool()
	return r.Err()
}

func (p *unstorePayload) AppendBinary(dst []byte) []byte {
	dst = append(dst, p.Key[:]...)
	dst = codec.AppendString(dst, string(p.DocID))
	return codec.AppendString(dst, string(p.Provider))
}

func (p *unstorePayload) DecodeBinary(data []byte) error {
	r := codec.NewReader(data)
	r.Fixed(p.Key[:])
	p.DocID = index.DocID(r.String())
	p.Provider = transport.PeerID(r.String())
	return r.Err()
}
