// Package metrics is the unified telemetry registry behind every
// layer of the reproduction: named counters, gauges, and fixed-bucket
// latency histograms, shared by the transports, the protocol
// implementations, the DHT overlay, the metadata store, and the
// experiment harness, and exported over HTTP by the daemon.
//
// Design constraints, in order:
//
//   - Cheap on the hot path. Callers resolve handles (Counter,
//     Histogram, ...) once at wiring time; recording is then pure
//     atomic arithmetic — no name lookup, no lock, no allocation.
//     Histogram buckets are powers of two located with bits.Len64.
//   - Inert. Recording never makes a decision: it cannot perturb
//     message order, content, or loss choices, so a golden trace
//     hashes identically with a live registry and with Discard().
//   - Snapshot-oriented. Readers take a Snapshot and difference two
//     snapshots with Delta, replacing the reset-then-read idiom of
//     the deprecated transport.Stats/ResetStats API (resetting shared
//     counters from one reader races with every other reader).
//
// Registration is get-or-create by name, so independent components
// wired to one registry aggregate into shared series (a cluster's
// peers sum their traffic), while components left on their default
// private registry keep instance-local numbers (each store's cache
// hit rate).
package metrics

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/errs"
)

// Counter is a monotonically increasing int64. The zero value is
// ready to use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is a programming error; it is not checked on
// the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 level.
type Gauge struct{ v atomic.Int64 }

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count: bits.Len64 ranges over
// 0..64, so bucket i holds values v with bits.Len64(v) == i, i.e.
// bucket 0 holds exactly 0 and bucket i>0 holds [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a fixed-bucket power-of-two histogram, sized for
// nanosecond latencies (bucket upper bounds 0, 1, 3, 7, ... 2^63-1).
// Observation is two atomic adds and a bit scan: zero allocation.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value (negative values clamp to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// BucketUpperBound returns the inclusive upper bound of bucket i
// (values v with bits.Len64(v) == i satisfy v <= 2^i - 1).
func BucketUpperBound(i int) uint64 {
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// CounterVec is a family of counters keyed by one label (message
// type, protocol, error code). With resolves a label value to its
// counter; steady-state resolution is one read-locked map lookup, and
// callers on hot paths resolve once and keep the handle.
type CounterVec struct {
	label   string
	discard bool
	mu      sync.RWMutex
	m       map[string]*Counter
}

// With returns the counter for one label value, creating it on first
// use.
func (v *CounterVec) With(value string) *Counter {
	if v.discard {
		return &discardRegistry.blackhole
	}
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.m[value]; c != nil {
		return c
	}
	c = &Counter{}
	v.m[value] = c
	return c
}

// Values snapshots the family as label value -> count.
func (v *CounterVec) Values() map[string]int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.m))
	for k, c := range v.m {
		out[k] = c.Value()
	}
	return out
}

// gaugeFn aggregates one or more callbacks registered under a single
// name: sum by default (store sizes across a cluster's peers add up),
// max when registered with GaugeFuncMax (the worst shard occupancy is
// a max, not a sum).
type gaugeFn struct {
	max bool
	fns []func() int64
}

func (g *gaugeFn) value() int64 {
	var out int64
	for i, fn := range g.fns {
		v := fn()
		if g.max {
			if i == 0 || v > out {
				out = v
			}
		} else {
			out += v
		}
	}
	return out
}

// ErrorsVecName is the registry's error counter family: one counter
// per structured error code (see internal/errs), label "code".
const ErrorsVecName = "errors"

// Registry is a concurrency-safe, get-or-create collection of named
// metrics. The zero value is not usable; call NewRegistry (or
// Discard for a shared no-op instance).
type Registry struct {
	discard bool
	// blackhole is the single counter every handle of a discard
	// registry resolves to; it accumulates garbage nobody reads.
	blackhole Counter

	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFns   map[string]*gaugeFn
	histograms map[string]*Histogram
	vecs       map[string]*CounterVec
}

// NewRegistry returns an empty live registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFns:   make(map[string]*gaugeFn),
		histograms: make(map[string]*Histogram),
		vecs:       make(map[string]*CounterVec),
	}
}

var (
	discardRegistry  = &Registry{discard: true}
	discardGauge     = &Gauge{}
	discardHistogram = &Histogram{}
	discardVec       = &CounterVec{discard: true}
)

// Discard returns the shared no-op registry: every handle it hands
// out records into write-only storage and every snapshot is empty.
// It is what the golden-trace guard runs against to prove recording
// never perturbs behavior.
func Discard() *Registry { return discardRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r.discard {
		return &r.blackhole
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r.discard {
		return discardGauge
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r.discard {
		return discardHistogram
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.histograms[name]; h != nil {
		return h
	}
	h = &Histogram{}
	r.histograms[name] = h
	return h
}

// CounterVec returns the named counter family, creating it on first
// use. The label name is fixed by the first registration.
func (r *Registry) CounterVec(name, label string) *CounterVec {
	if r.discard {
		return discardVec
	}
	r.mu.RLock()
	v := r.vecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v := r.vecs[name]; v != nil {
		return v
	}
	v = &CounterVec{label: label, m: make(map[string]*Counter)}
	r.vecs[name] = v
	return v
}

// GaugeFunc registers a callback evaluated at snapshot time. Multiple
// callbacks under one name sum — N stores wired to one registry
// report their combined document count.
func (r *Registry) GaugeFunc(name string, fn func() int64) { r.gaugeFunc(name, fn, false) }

// GaugeFuncMax is GaugeFunc with max aggregation across callbacks
// (the aggregation mode is fixed by the first registration).
func (r *Registry) GaugeFuncMax(name string, fn func() int64) { r.gaugeFunc(name, fn, true) }

func (r *Registry) gaugeFunc(name string, fn func() int64, max bool) {
	if r.discard || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gaugeFns[name]
	if g == nil {
		g = &gaugeFn{max: max}
		r.gaugeFns[name] = g
	}
	g.fns = append(g.fns, fn)
}

// Errors returns the registry's error counter family, keyed by
// structured error code.
func (r *Registry) Errors() *CounterVec { return r.CounterVec(ErrorsVecName, "code") }

// CountError classifies err by its structured code (errs.Code) and
// increments the matching error counter; uncoded errors count under
// "unknown". A nil err is a no-op.
func (r *Registry) CountError(err error) {
	if err == nil || r.discard {
		return
	}
	code := errs.Code(err)
	if code == "" {
		code = "unknown"
	}
	r.Errors().With(code).Inc()
}

// Reset zeroes every counter, gauge, histogram, and family counter.
// It exists for the deprecated Reset-style accessors; new code should
// difference snapshots with Delta instead.
func (r *Registry) Reset() { r.ResetPrefix("") }

// ResetPrefix zeroes every metric whose name starts with prefix
// (gauge callbacks are left alone: they read live state).
func (r *Registry) ResetPrefix(prefix string) {
	if r.discard {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		if hasPrefix(name, prefix) {
			c.v.Store(0)
		}
	}
	for name, g := range r.gauges {
		if hasPrefix(name, prefix) {
			g.v.Store(0)
		}
	}
	for name, h := range r.histograms {
		if hasPrefix(name, prefix) {
			h.count.Store(0)
			h.sum.Store(0)
			for i := range h.buckets {
				h.buckets[i].Store(0)
			}
		}
	}
	for name, v := range r.vecs {
		if !hasPrefix(name, prefix) {
			continue
		}
		v.mu.RLock()
		for _, c := range v.m {
			c.v.Store(0)
		}
		v.mu.RUnlock()
	}
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// BucketCount is one non-empty histogram bucket in a snapshot.
type BucketCount struct {
	// UpperBound is the bucket's inclusive upper bound.
	UpperBound uint64 `json:"le"`
	Count      int64  `json:"count"`
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the mean observed value (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry, safe to read and
// difference without synchronization.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Labeled    map[string]map[string]int64  `json:"labeled,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// LabelNames maps each family name to its label name ("type",
	// "protocol", "code"), for the exposition formats.
	LabelNames map[string]string `json:"-"`
}

// Snapshot copies the registry's current state, evaluating gauge
// callbacks. Concurrent recording is safe; each individual value is
// read atomically.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Labeled:    make(map[string]map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
		LabelNames: make(map[string]string),
	}
	if r.discard {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, g := range r.gaugeFns {
		s.Gauges[name] = g.value()
	}
	for name, v := range r.vecs {
		s.Labeled[name] = v.Values()
		s.LabelNames[name] = v.label
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				hs.Buckets = append(hs.Buckets, BucketCount{UpperBound: BucketUpperBound(i), Count: n})
			}
		}
		s.Histograms[name] = hs
	}
	return s
}

// Counter returns a counter's value (0 when absent).
func (s *Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge's value (0 when absent).
func (s *Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Label returns one family counter's value (0 when absent).
func (s *Snapshot) Label(name, value string) int64 { return s.Labeled[name][value] }

// Delta returns this snapshot minus prev: counters, family counters,
// and histogram counts subtract (an experiment phase's cost); gauges
// keep their current level (a level has no meaningful difference).
// prev may be nil, in which case the snapshot is returned unchanged.
func (s *Snapshot) Delta(prev *Snapshot) *Snapshot {
	if prev == nil {
		return s
	}
	d := &Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Labeled:    make(map[string]map[string]int64, len(s.Labeled)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
		LabelNames: s.LabelNames,
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, m := range s.Labeled {
		dm := make(map[string]int64, len(m))
		for k, v := range m {
			dm[k] = v - prev.Labeled[name][k]
		}
		d.Labeled[name] = dm
	}
	for name, h := range s.Histograms {
		ph := prev.Histograms[name]
		dh := HistogramSnapshot{Count: h.Count - ph.Count, Sum: h.Sum - ph.Sum}
		pb := make(map[uint64]int64, len(ph.Buckets))
		for _, b := range ph.Buckets {
			pb[b.UpperBound] = b.Count
		}
		for _, b := range h.Buckets {
			if n := b.Count - pb[b.UpperBound]; n > 0 {
				dh.Buckets = append(dh.Buckets, BucketCount{UpperBound: b.UpperBound, Count: n})
			}
		}
		d.Histograms[name] = dh
	}
	return d
}

// Names returns every metric name in the snapshot, sorted: the
// iteration order of the exposition formats.
func (s *Snapshot) Names() []string {
	seen := make(map[string]struct{})
	for n := range s.Counters {
		seen[n] = struct{}{}
	}
	for n := range s.Gauges {
		seen[n] = struct{}{}
	}
	for n := range s.Labeled {
		seen[n] = struct{}{}
	}
	for n := range s.Histograms {
		seen[n] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
