package metrics

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/bits"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/errs"
)

// TestRegistryConcurrentRecording hammers one registry from many
// goroutines — counters, gauges, histograms, vec labels, snapshots,
// resets — and checks the totals. `make race` runs this under the
// race detector, which is the real assertion.
func TestRegistryConcurrentRecording(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("fn.sum", func() int64 { return 1 })
	reg.GaugeFunc("fn.sum", func() int64 { return 2 })
	reg.GaugeFuncMax("fn.max", func() int64 { return 7 })
	reg.GaugeFuncMax("fn.max", func() int64 { return 5 })

	const (
		workers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("test.counter")
			g := reg.Gauge("test.gauge")
			h := reg.Histogram("test.hist")
			vec := reg.CounterVec("test.vec", "kind")
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i))
				vec.With("a").Inc()
				if i%2 == 0 {
					vec.With("b").Inc()
				}
			}
		}(w)
	}
	// Snapshot concurrently with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = reg.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	s := reg.Snapshot()
	if got := s.Counter("test.counter"); got != workers*perW {
		t.Errorf("counter = %d, want %d", got, workers*perW)
	}
	if got := s.Label("test.vec", "a"); got != workers*perW {
		t.Errorf("vec[a] = %d, want %d", got, workers*perW)
	}
	if got := s.Label("test.vec", "b"); got != workers*perW/2 {
		t.Errorf("vec[b] = %d, want %d", got, workers*perW/2)
	}
	if got := s.Histograms["test.hist"].Count; got != workers*perW {
		t.Errorf("hist count = %d, want %d", got, workers*perW)
	}
	if got := s.Gauge("fn.sum"); got != 3 {
		t.Errorf("sum gauge func = %d, want 3", got)
	}
	if got := s.Gauge("fn.max"); got != 7 {
		t.Errorf("max gauge func = %d, want 7", got)
	}

	reg.ResetPrefix("test.")
	s = reg.Snapshot()
	if s.Counter("test.counter") != 0 || s.Label("test.vec", "a") != 0 || s.Histograms["test.hist"].Count != 0 {
		t.Errorf("ResetPrefix left test.* non-zero: %+v", s)
	}
	if s.Gauge("fn.sum") != 3 {
		t.Errorf("ResetPrefix touched gauge funcs")
	}
}

// TestHistogramBucketBoundaries is the bucket-placement property test:
// for every exponent, the values 2^i-1, 2^i, and 2^i+1 land in the
// bucket whose bounds contain them, and random values obey
// 2^(idx-1) <= v <= BucketUpperBound(idx).
func TestHistogramBucketBoundaries(t *testing.T) {
	bucketOf := func(v int64) int {
		h := &Histogram{}
		h.Observe(v)
		for i := range h.buckets {
			if h.buckets[i].Load() == 1 {
				return i
			}
		}
		t.Fatalf("value %d landed in no bucket", v)
		return -1
	}

	if got := bucketOf(0); got != 0 {
		t.Errorf("bucket(0) = %d, want 0", got)
	}
	if got := bucketOf(-5); got != 0 {
		t.Errorf("bucket(-5) = %d, want 0 (clamped)", got)
	}
	for exp := 0; exp < 63; exp++ {
		edge := int64(1) << uint(exp) // bits.Len64 == exp+1, first value of bucket exp+1
		if got, want := bucketOf(edge), exp+1; got != want {
			t.Fatalf("bucket(2^%d) = %d, want %d", exp, got, want)
		}
		if edge > 1 {
			if got, want := bucketOf(edge-1), exp; got != want {
				t.Fatalf("bucket(2^%d-1) = %d, want %d", exp, got, want)
			}
		}
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		v := rng.Int63()
		idx := bucketOf(v)
		if uint64(v) > BucketUpperBound(idx) {
			t.Fatalf("value %d above bucket %d upper bound %d", v, idx, BucketUpperBound(idx))
		}
		if idx > 0 && uint64(v) <= BucketUpperBound(idx-1) {
			t.Fatalf("value %d not above bucket %d's bound — belongs lower", v, idx-1)
		}
		if want := bits.Len64(uint64(v)); idx != want {
			t.Fatalf("bucket(%d) = %d, want bits.Len64 = %d", v, idx, want)
		}
	}
}

func TestSnapshotDelta(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a.msgs")
	h := reg.Histogram("a.lat")
	vec := reg.CounterVec("a.by_type", "type")
	c.Add(10)
	h.Observe(100)
	vec.With("x").Add(3)
	before := reg.Snapshot()
	c.Add(5)
	h.Observe(100)
	h.Observe(1 << 30)
	vec.With("x").Inc()
	vec.With("y").Inc()
	d := reg.Snapshot().Delta(before)
	if got := d.Counter("a.msgs"); got != 5 {
		t.Errorf("delta counter = %d, want 5", got)
	}
	if got := d.Label("a.by_type", "x"); got != 1 {
		t.Errorf("delta vec x = %d, want 1", got)
	}
	if got := d.Label("a.by_type", "y"); got != 1 {
		t.Errorf("delta vec y = %d, want 1", got)
	}
	dh := d.Histograms["a.lat"]
	if dh.Count != 2 {
		t.Errorf("delta hist count = %d, want 2", dh.Count)
	}
	total := int64(0)
	for _, b := range dh.Buckets {
		total += b.Count
	}
	if total != 2 {
		t.Errorf("delta hist bucket total = %d, want 2", total)
	}
	if d.Delta(nil) != d {
		t.Errorf("Delta(nil) should return the snapshot unchanged")
	}
}

func TestDiscardRegistryIsInert(t *testing.T) {
	reg := Discard()
	reg.Counter("x.y").Add(9)
	reg.Gauge("x.g").Set(3)
	reg.Histogram("x.h").Observe(7)
	reg.CounterVec("x.v", "k").With("a").Inc()
	reg.GaugeFunc("x.f", func() int64 { t.Error("discard registry evaluated a gauge func"); return 0 })
	reg.CountError(errors.New("boom"))
	reg.Reset()
	s := reg.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Labeled) != 0 || len(s.Histograms) != 0 {
		t.Errorf("discard snapshot not empty: %+v", s)
	}
}

func TestCountError(t *testing.T) {
	reg := NewRegistry()
	sentinel := errs.New("transport.unknown_peer", "transport: unknown peer")
	reg.CountError(sentinel)
	reg.CountError(errs.Wrap("dht.lookup_rpc", sentinel, "dht: lookup rpc"))
	reg.CountError(errors.New("plain"))
	reg.CountError(nil)
	s := reg.Snapshot()
	if got := s.Label(ErrorsVecName, "transport.unknown_peer"); got != 1 {
		t.Errorf("unknown_peer count = %d, want 1", got)
	}
	if got := s.Label(ErrorsVecName, "dht.lookup_rpc"); got != 1 {
		t.Errorf("wrapped code count = %d, want 1 (outermost code wins)", got)
	}
	if got := s.Label(ErrorsVecName, "unknown"); got != 1 {
		t.Errorf("uncoded count = %d, want 1", got)
	}
}

func TestExpositionFormats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("transport.msgs_delivered").Add(12)
	reg.Gauge("index.docs").Set(4)
	reg.CounterVec("transport.msgs_by_type", "type").With("query").Add(7)
	reg.Histogram("p2p.search_latency_ns.gnutella").ObserveDuration(3 * time.Millisecond)
	snap := reg.Snapshot()

	var jb bytes.Buffer
	if err := snap.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(jb.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON output does not parse: %v\n%s", err, jb.String())
	}
	if decoded["transport.msgs_delivered"] != float64(12) {
		t.Errorf("JSON counter = %v, want 12", decoded["transport.msgs_delivered"])
	}
	if decoded[`transport.msgs_by_type{type=query}`] != float64(7) {
		t.Errorf("JSON labeled counter missing: %s", jb.String())
	}

	var pb bytes.Buffer
	if err := snap.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	prom := pb.String()
	for _, want := range []string{
		"# TYPE up2p_transport_msgs_delivered counter",
		"up2p_transport_msgs_delivered 12",
		"up2p_index_docs 4",
		`up2p_transport_msgs_by_type{type="query"} 7`,
		"up2p_p2p_search_latency_ns_gnutella_bucket{le=\"+Inf\"} 1",
		"up2p_p2p_search_latency_ns_gnutella_count 1",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, prom)
		}
	}
}
