package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// WriteJSON writes the snapshot as one flat, expvar-compatible JSON
// object: `{"name": value, ...}` with dotted metric names, family
// counters keyed "name{label=value}", and histograms as objects with
// count/sum/buckets. Keys are emitted sorted, so output is
// deterministic and diffable.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	type kv struct {
		key string
		val any
	}
	var items []kv
	for name, v := range s.Counters {
		items = append(items, kv{name, v})
	}
	for name, v := range s.Gauges {
		items = append(items, kv{name, v})
	}
	for name, m := range s.Labeled {
		label := s.LabelNames[name]
		for lv, v := range m {
			items = append(items, kv{fmt.Sprintf("%s{%s=%s}", name, label, lv), v})
		}
	}
	for name, h := range s.Histograms {
		items = append(items, kv{name, h})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].key < items[j].key })
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, it := range items {
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		kb, err := json.Marshal(it.key)
		if err != nil {
			return err
		}
		vb, err := json.Marshal(it.val)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s: %s", kb, vb); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

// WritePrometheus writes the snapshot in the Prometheus text
// exposition format. Names are sanitized ("transport.msgs_delivered"
// -> "up2p_transport_msgs_delivered"); histograms emit cumulative
// _bucket series with `le` bounds plus _sum and _count. Values are
// raw (latencies stay in nanoseconds; the metric names carry the
// unit).
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range s.Names() {
		pn := promName(name)
		if v, ok := s.Counters[name]; ok {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, v); err != nil {
				return err
			}
		}
		if v, ok := s.Gauges[name]; ok {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, v); err != nil {
				return err
			}
		}
		if m, ok := s.Labeled[name]; ok {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", pn); err != nil {
				return err
			}
			label := promLabel(s.LabelNames[name])
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", pn, label, k, m[k]); err != nil {
					return err
				}
			}
		}
		if h, ok := s.Histograms[name]; ok {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
				return err
			}
			cum := int64(0)
			for _, b := range h.Buckets {
				cum += b.Count
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.UpperBound, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
				pn, h.Count, pn, h.Sum, pn, h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// promName maps a dotted metric name onto the Prometheus namespace.
func promName(name string) string { return "up2p_" + sanitize(name) }

// promLabel sanitizes a label name (no namespace prefix).
func promLabel(label string) string {
	if label == "" {
		return "label"
	}
	return sanitize(label)
}

// sanitize replaces every character outside [a-zA-Z0-9_] with '_'.
func sanitize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Handler serves the registry over HTTP: Prometheus text by default,
// the expvar-compatible JSON object when the request asks for JSON
// (?format=json, or an Accept header naming application/json).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap.WritePrometheus(w)
	})
}
