package xmldoc

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	doc, err := ParseString(`<root a="1"><child>hello</child><child b="2"/></root>`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if doc.Name != "root" {
		t.Errorf("root name = %q, want root", doc.Name)
	}
	if v, ok := doc.Attr("a"); !ok || v != "1" {
		t.Errorf("attr a = %q,%v want 1,true", v, ok)
	}
	kids := doc.Elements()
	if len(kids) != 2 {
		t.Fatalf("children = %d, want 2", len(kids))
	}
	if got := kids[0].Text(); got != "hello" {
		t.Errorf("child text = %q, want hello", got)
	}
	if v, ok := kids[1].Attr("b"); !ok || v != "2" {
		t.Errorf("second child attr b = %q,%v", v, ok)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"empty", ""},
		{"unclosed", "<a><b></a>"},
		{"junk", "not xml at all <"},
		{"two roots", "<a/><b/>"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseString(tt.in); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestNamespacePrefixing(t *testing.T) {
	doc, err := ParseString(`<schema xmlns="http://www.w3.org/2001/XMLSchema"><element name="x"/></schema>`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if doc.Name != "xsd:schema" {
		t.Errorf("name = %q, want xsd:schema", doc.Name)
	}
	if doc.LocalName() != "schema" {
		t.Errorf("local = %q, want schema", doc.LocalName())
	}
	if doc.Prefix() != "xsd" {
		t.Errorf("prefix = %q, want xsd", doc.Prefix())
	}
	el := doc.Child("element")
	if el == nil {
		t.Fatal("child element not found via local name")
	}
	if el.Name != "xsd:element" {
		t.Errorf("child name = %q", el.Name)
	}
}

func TestXSLNamespace(t *testing.T) {
	doc := MustParse(`<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0"><xsl:template match="/"/></xsl:stylesheet>`)
	if doc.Name != "xsl:stylesheet" {
		t.Errorf("name = %q", doc.Name)
	}
	if tpl := doc.Child("template"); tpl == nil {
		t.Error("template child missing")
	}
}

func TestWhitespaceDropped(t *testing.T) {
	doc := MustParse("<a>\n  <b>x</b>\n  <c> y z </c>\n</a>")
	if len(doc.Children) != 2 {
		t.Fatalf("children = %d, want 2 (whitespace text dropped)", len(doc.Children))
	}
	if got := doc.Child("c").Text(); got != " y z " {
		t.Errorf("c text = %q, want ' y z ' preserved", got)
	}
}

func TestFindAndChildText(t *testing.T) {
	doc := MustParse(`<community><name>mp3</name><nested><deep>v</deep></nested></community>`)
	if got := doc.ChildText("name"); got != "mp3" {
		t.Errorf("ChildText = %q", got)
	}
	if n := doc.Find("nested/deep"); n == nil || n.Text() != "v" {
		t.Errorf("Find nested/deep = %v", n)
	}
	if n := doc.Find("nested/missing"); n != nil {
		t.Errorf("Find missing = %v, want nil", n)
	}
}

func TestSetChildText(t *testing.T) {
	doc := NewElement("obj")
	doc.SetChildText("title", "first")
	doc.SetChildText("title", "second")
	if got := doc.ChildText("title"); got != "second" {
		t.Errorf("title = %q, want second", got)
	}
	if n := len(doc.ChildrenNamed("title")); n != 1 {
		t.Errorf("title elements = %d, want 1", n)
	}
}

func TestAttrOps(t *testing.T) {
	n := NewElement("e")
	n.SetAttr("k", "v1")
	n.SetAttr("k", "v2")
	if v, _ := n.Attr("k"); v != "v2" {
		t.Errorf("attr = %q", v)
	}
	if len(n.Attrs) != 1 {
		t.Errorf("attrs = %d, want 1", len(n.Attrs))
	}
	if got := n.AttrDefault("missing", "d"); got != "d" {
		t.Errorf("AttrDefault = %q", got)
	}
	if !n.RemoveAttr("k") {
		t.Error("RemoveAttr existing = false")
	}
	if n.RemoveAttr("k") {
		t.Error("RemoveAttr absent = true")
	}
}

func TestInsertRemoveChild(t *testing.T) {
	p := NewElement("p")
	a, b, c := NewElement("a"), NewElement("b"), NewElement("c")
	p.AppendChild(a)
	p.AppendChild(c)
	p.InsertChildAt(1, b)
	names := []string{}
	for _, ch := range p.Children {
		names = append(names, ch.Name)
	}
	if !reflect.DeepEqual(names, []string{"a", "b", "c"}) {
		t.Errorf("order = %v", names)
	}
	if !p.RemoveChild(b) {
		t.Error("RemoveChild = false")
	}
	if b.Parent != nil {
		t.Error("removed child still has parent")
	}
	if p.RemoveChild(b) {
		t.Error("double remove = true")
	}
	// Clamp behaviour.
	p.InsertChildAt(-5, NewElement("front"))
	p.InsertChildAt(999, NewElement("back"))
	if p.Children[0].Name != "front" || p.Children[len(p.Children)-1].Name != "back" {
		t.Errorf("clamped inserts wrong: %v", p.String())
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := MustParse(`<a x="1"><b><c>t</c></b></a>`)
	cl := orig.Clone()
	if !Equal(orig, cl) {
		t.Fatal("clone not equal to original")
	}
	cl.Find("b/c").Children[0].Data = "changed"
	if orig.Find("b/c").Text() != "t" {
		t.Error("mutating clone affected original")
	}
	if cl.Parent != nil {
		t.Error("clone has parent")
	}
}

func TestEqualIgnoresAttrOrderAndComments(t *testing.T) {
	a := MustParse(`<e x="1" y="2"><!--c--><k/></e>`)
	b := MustParse(`<e y="2" x="1"><k/></e>`)
	if !Equal(a, b) {
		t.Error("Equal = false, want true")
	}
	c := MustParse(`<e y="2" x="ZZZ"><k/></e>`)
	if Equal(a, c) {
		t.Error("Equal with differing attr = true")
	}
}

func TestWalkPrune(t *testing.T) {
	doc := MustParse(`<a><skip><inner/></skip><keep/></a>`)
	var visited []string
	doc.Walk(func(n *Node) bool {
		if n.Kind != KindElement {
			return true
		}
		visited = append(visited, n.Name)
		return n.Name != "skip"
	})
	if !reflect.DeepEqual(visited, []string{"a", "skip", "keep"}) {
		t.Errorf("visited = %v", visited)
	}
}

func TestDepthRootIndex(t *testing.T) {
	doc := MustParse(`<a><b><c/></b><d/></a>`)
	c := doc.Find("b/c")
	if c.Depth() != 2 {
		t.Errorf("depth = %d", c.Depth())
	}
	if c.Root() != doc {
		t.Error("Root() wrong")
	}
	d := doc.Child("d")
	if d.Index() != 1 {
		t.Errorf("index = %d", d.Index())
	}
	if doc.Index() != -1 {
		t.Errorf("detached index = %d", doc.Index())
	}
}

func TestSerializeEscaping(t *testing.T) {
	n := NewElement("e")
	n.SetAttr("a", `va"l<&`)
	n.AppendChild(NewText("x < y & z > w"))
	out := n.String()
	reparsed, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse %q: %v", out, err)
	}
	if got := reparsed.Text(); got != "x < y & z > w" {
		t.Errorf("text after round trip = %q", got)
	}
	if v, _ := reparsed.Attr("a"); v != `va"l<&` {
		t.Errorf("attr after round trip = %q", v)
	}
}

func TestRoundTripStable(t *testing.T) {
	src := `<community protocol="Gnutella"><name>design patterns</name><keywords>gof, oo</keywords><nested><deep attr="v">text</deep></nested></community>`
	doc := MustParse(src)
	once := doc.String()
	again := MustParse(once).String()
	if once != again {
		t.Errorf("serialization not a fixed point:\n%s\n%s", once, again)
	}
}

func TestIndentParsesBack(t *testing.T) {
	doc := MustParse(`<a x="1"><b>text</b><c><d/></c></a>`)
	pretty := doc.Indent()
	back, err := ParseString(pretty)
	if err != nil {
		t.Fatalf("parse indented: %v", err)
	}
	if !Equal(doc, back) {
		t.Errorf("indent round trip changed tree:\n%s", pretty)
	}
}

// genTree builds a random small tree for property tests.
func genTree(r *rand.Rand, depth int) *Node {
	names := []string{"a", "b", "community", "name", "item"}
	n := NewElement(names[r.Intn(len(names))])
	if r.Intn(2) == 0 {
		n.SetAttr("k"+string(rune('a'+r.Intn(3))), randText(r))
	}
	kids := r.Intn(3)
	for i := 0; i < kids; i++ {
		if depth <= 0 || r.Intn(2) == 0 {
			if s := randText(r); strings.TrimSpace(s) != "" {
				n.AppendChild(NewText(s))
			}
		} else {
			n.AppendChild(genTree(r, depth-1))
		}
	}
	return n
}

func randText(r *rand.Rand) string {
	alphabet := "abc <>&\"xyz"
	ln := r.Intn(8) + 1
	var b strings.Builder
	for i := 0; i < ln; i++ {
		b.WriteByte(alphabet[r.Intn(len(alphabet))])
	}
	return b.String()
}

// Property: serialize → parse is identity (modulo whitespace-only text,
// which genTree never produces, and text-node merging).
func TestPropertySerializeParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := genTree(r, 3)
		mergeAdjacentText(tree)
		dropSpaceOnlyText(tree)
		out := tree.String()
		back, err := ParseString(out)
		if err != nil {
			t.Logf("seed %d: reparse error %v on %q", seed, err, out)
			return false
		}
		if !Equal(tree, back) {
			t.Logf("seed %d: tree mismatch\nout: %s\nback: %s", seed, out, back.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func mergeAdjacentText(n *Node) {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == KindText && len(out) > 0 && out[len(out)-1].Kind == KindText {
			out[len(out)-1].Data += c.Data
			continue
		}
		out = append(out, c)
		if c.Kind == KindElement {
			mergeAdjacentText(c)
		}
	}
	n.Children = out
}

func dropSpaceOnlyText(n *Node) {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == KindText && strings.TrimSpace(c.Data) == "" {
			continue
		}
		out = append(out, c)
		if c.Kind == KindElement {
			dropSpaceOnlyText(c)
		}
	}
	n.Children = out
}

// Property: Clone never aliases: structural equality plus pointer
// disjointness at every node.
func TestPropertyCloneDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := genTree(r, 3)
		cl := tree.Clone()
		if !Equal(tree, cl) {
			return false
		}
		seen := map[*Node]bool{}
		tree.Walk(func(n *Node) bool { seen[n] = true; return true })
		disjoint := true
		cl.Walk(func(n *Node) bool {
			if seen[n] {
				disjoint = false
			}
			return true
		})
		return disjoint
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTextAggregation(t *testing.T) {
	doc := MustParse(`<p>one<b>two</b>three</p>`)
	if got := doc.Text(); got != "onetwothree" {
		t.Errorf("Text = %q", got)
	}
}

func TestKindString(t *testing.T) {
	if KindElement.String() != "element" || KindText.String() != "text" || KindComment.String() != "comment" {
		t.Error("Kind.String wrong")
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}
