// Package xmldoc provides a mutable XML document tree used throughout
// U-P2P as the common representation for schemas, stylesheets, shared
// objects and wire payloads.
//
// The tree is deliberately simple: elements, text, and comments. It
// preserves document order, attribute order, and parent links so that
// XPath axes (parent, ancestor, following-sibling, ...) can be
// evaluated over it. Namespace handling is prefix-based: a node keeps
// the prefix it was written with plus any xmlns declarations among its
// attributes, which matches how the paper's artifacts (Fig. 3 schema,
// XSLT stylesheets) use namespaces.
package xmldoc

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind discriminates node types in the document tree.
type Kind int

// Node kinds. Element nodes carry a name, attributes and children;
// Text and Comment nodes carry only character data.
const (
	KindElement Kind = iota + 1
	KindText
	KindComment
	// KindAttribute nodes never appear among Children; they are
	// synthesized transiently by XPath attribute-axis selection. Name is
	// the attribute name, Data its value, Parent the owning element.
	KindAttribute
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindElement:
		return "element"
	case KindText:
		return "text"
	case KindComment:
		return "comment"
	case KindAttribute:
		return "attribute"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Attr is a single attribute. Name may include a prefix ("xsl:version")
// exactly as written in the source document.
type Attr struct {
	Name  string
	Value string
}

// Node is one node in the document tree. The zero value is not useful;
// use NewElement, NewText or Parse to obtain nodes.
type Node struct {
	Kind     Kind
	Name     string // prefixed name for elements ("xsd:element"); empty for text/comment
	Data     string // character data for text/comment nodes
	Attrs    []Attr
	Children []*Node
	Parent   *Node
}

// Common parsing errors.
var (
	ErrNoRoot       = errors.New("xmldoc: document has no root element")
	ErrMultipleRoot = errors.New("xmldoc: document has multiple root elements")
)

// NewElement returns a fresh element node with the given (possibly
// prefixed) name.
func NewElement(name string) *Node {
	return &Node{Kind: KindElement, Name: name}
}

// NewText returns a fresh text node.
func NewText(data string) *Node {
	return &Node{Kind: KindText, Data: data}
}

// NewComment returns a fresh comment node.
func NewComment(data string) *Node {
	return &Node{Kind: KindComment, Data: data}
}

// Parse reads a complete XML document from r and returns its root
// element. Character data consisting solely of whitespace between
// elements is dropped; all other text is preserved verbatim.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := NewElement(qualName(t.Name))
			n.Attrs = make([]Attr, 0, len(t.Attr))
			for _, a := range t.Attr {
				n.Attrs = append(n.Attrs, Attr{Name: qualName(a.Name), Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, ErrMultipleRoot
				}
				root = n
			} else {
				stack[len(stack)-1].AppendChild(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, errors.New("xmldoc: unbalanced end element")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue // whitespace outside root
			}
			s := string(t)
			top := stack[len(stack)-1]
			if strings.TrimSpace(s) == "" && !preservesSpace(top) {
				continue
			}
			// Merge adjacent text produced by entity boundaries.
			if n := len(top.Children); n > 0 && top.Children[n-1].Kind == KindText {
				top.Children[n-1].Data += s
			} else {
				top.AppendChild(NewText(s))
			}
		case xml.Comment:
			if len(stack) > 0 {
				stack[len(stack)-1].AppendChild(NewComment(string(t)))
			}
		case xml.ProcInst, xml.Directive:
			// Prologue material is not represented in the tree.
		}
	}
	if root == nil {
		return nil, ErrNoRoot
	}
	if len(stack) != 0 {
		return nil, errors.New("xmldoc: unclosed element")
	}
	return root, nil
}

// ParseString is Parse over an in-memory document.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

// MustParse parses s and panics on error. Intended for compiled-in
// documents (default stylesheets, the root community schema) whose
// validity is a program invariant.
func MustParse(s string) *Node {
	n, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return n
}

// preservesSpace reports whether whitespace-only character data inside
// the element is significant: xsl:text content always is, as is any
// element carrying xml:space="preserve".
func preservesSpace(n *Node) bool {
	if n.Name == "xsl:text" {
		return true
	}
	return n.AttrDefault("xml:space", "") == "preserve"
}

func qualName(n xml.Name) string {
	// encoding/xml resolves namespaces into Space as a URI; we keep the
	// local name and re-prefix well-known namespaces so prefix-based
	// matching (how the paper's documents address nodes) works.
	if n.Space == "" {
		return n.Local
	}
	if p, ok := wellKnownNS[n.Space]; ok {
		return p + ":" + n.Local
	}
	// Unknown namespace: keep local name only. The document's xmlns
	// attributes remain available on the element for callers that care.
	return n.Local
}

// wellKnownNS maps namespace URIs to canonical prefixes. U-P2P's
// artifacts use exactly these namespaces.
var wellKnownNS = map[string]string{
	"http://www.w3.org/2001/XMLSchema":          "xsd",
	"http://www.w3.org/1999/XSL/Transform":      "xsl",
	"http://www.w3.org/1999/xhtml":              "html",
	"http://up2p.carleton.ca/ns/community":      "up2p",
	"http://www.w3.org/XML/1998/namespace":      "xml",
	"http://www.w3.org/2000/xmlns/":             "xmlns",
	"http://www.xml-cml.org/schema":             "cml",
	"http://up2p.carleton.ca/ns/designpatterns": "dp",
}

// LocalName returns the name without any prefix.
func (n *Node) LocalName() string {
	if i := strings.IndexByte(n.Name, ':'); i >= 0 {
		return n.Name[i+1:]
	}
	return n.Name
}

// Prefix returns the namespace prefix, or "" if unprefixed.
func (n *Node) Prefix() string {
	if i := strings.IndexByte(n.Name, ':'); i >= 0 {
		return n.Name[:i]
	}
	return ""
}

// AppendChild attaches c as the last child of n and sets its parent.
func (n *Node) AppendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// InsertChildAt inserts c at index i among n's children. Out-of-range
// indexes clamp to the valid range.
func (n *Node) InsertChildAt(i int, c *Node) {
	if i < 0 {
		i = 0
	}
	if i > len(n.Children) {
		i = len(n.Children)
	}
	c.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
}

// RemoveChild detaches c from n. It reports whether c was a child.
func (n *Node) RemoveChild(c *Node) bool {
	for i, ch := range n.Children {
		if ch == c {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			c.Parent = nil
			return true
		}
	}
	return false
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrDefault returns the named attribute or def when absent.
func (n *Node) AttrDefault(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// SetAttr sets (or replaces) an attribute value.
func (n *Node) SetAttr(name, value string) {
	for i, a := range n.Attrs {
		if a.Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// RemoveAttr deletes the named attribute, reporting whether it existed.
func (n *Node) RemoveAttr(name string) bool {
	for i, a := range n.Attrs {
		if a.Name == name {
			n.Attrs = append(n.Attrs[:i], n.Attrs[i+1:]...)
			return true
		}
	}
	return false
}

// Elements returns n's element children, in document order.
func (n *Node) Elements() []*Node {
	out := make([]*Node, 0, len(n.Children))
	for _, c := range n.Children {
		if c.Kind == KindElement {
			out = append(out, c)
		}
	}
	return out
}

// Child returns the first child element whose local name matches, or
// nil. Matching is on local name so "xsd:element" matches "element".
func (n *Node) Child(local string) *Node {
	for _, c := range n.Children {
		if c.Kind == KindElement && c.LocalName() == local {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all child elements whose local name matches.
func (n *Node) ChildrenNamed(local string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == KindElement && c.LocalName() == local {
			out = append(out, c)
		}
	}
	return out
}

// Find walks a '/'-separated path of local names from n and returns the
// first match, or nil. A path like "complexType/sequence/element"
// descends first-match at each step.
func (n *Node) Find(path string) *Node {
	cur := n
	for _, seg := range strings.Split(path, "/") {
		if seg == "" {
			continue
		}
		cur = cur.Child(seg)
		if cur == nil {
			return nil
		}
	}
	return cur
}

// Text returns the concatenation of all descendant text nodes, in
// document order (the XPath string-value of an element).
func (n *Node) Text() string {
	if n.Kind != KindElement {
		return n.Data
	}
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	for _, c := range n.Children {
		switch c.Kind {
		case KindText:
			b.WriteString(c.Data)
		case KindElement:
			c.appendText(b)
		}
	}
}

// ChildText returns the trimmed string-value of the first child element
// with the given local name, or "".
func (n *Node) ChildText(local string) string {
	c := n.Child(local)
	if c == nil {
		return ""
	}
	return strings.TrimSpace(c.Text())
}

// SetChildText ensures a child element named local exists and contains
// exactly the given text.
func (n *Node) SetChildText(local, text string) {
	c := n.Child(local)
	if c == nil {
		c = NewElement(local)
		n.AppendChild(c)
	}
	c.Children = nil
	c.AppendChild(NewText(text))
}

// Clone returns a deep copy of the subtree rooted at n. The clone's
// parent is nil.
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Name: n.Name, Data: n.Data}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	for _, ch := range n.Children {
		c.AppendChild(ch.Clone())
	}
	return c
}

// Walk visits n and every descendant in document order. Returning
// false from fn prunes the subtree below the visited node.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Depth returns the number of ancestors of n.
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Root returns the topmost ancestor of n (n itself if detached).
func (n *Node) Root() *Node {
	cur := n
	for cur.Parent != nil {
		cur = cur.Parent
	}
	return cur
}

// Index returns n's position among its parent's children, or -1 when
// detached.
func (n *Node) Index() int {
	if n.Parent == nil {
		return -1
	}
	for i, c := range n.Parent.Children {
		if c == n {
			return i
		}
	}
	return -1
}

// Equal reports deep structural equality of two subtrees, ignoring
// attribute order and comments.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Name != b.Name {
		return false
	}
	if a.Kind != KindElement {
		return a.Data == b.Data
	}
	if !attrsEqual(a.Attrs, b.Attrs) {
		return false
	}
	ac, bc := withoutComments(a.Children), withoutComments(b.Children)
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if !Equal(ac[i], bc[i]) {
			return false
		}
	}
	return true
}

func withoutComments(in []*Node) []*Node {
	out := make([]*Node, 0, len(in))
	for _, c := range in {
		if c.Kind != KindComment {
			out = append(out, c)
		}
	}
	return out
}

func attrsEqual(a, b []Attr) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]Attr(nil), a...)
	bs := append([]Attr(nil), b...)
	sortAttrs(as)
	sortAttrs(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func sortAttrs(s []Attr) {
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
}

// String serializes the subtree as compact XML (no added whitespace).
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b, -1, 0)
	return b.String()
}

// Indent serializes the subtree with two-space indentation, one element
// per line, suitable for human inspection and stable golden tests.
func (n *Node) Indent() string {
	var b strings.Builder
	n.write(&b, 0, 0)
	b.WriteByte('\n')
	return b.String()
}

// write emits the node. indent < 0 means compact output.
func (n *Node) write(b *strings.Builder, indent, depth int) {
	pad := func() {
		if indent >= 0 {
			if b.Len() > 0 {
				b.WriteByte('\n')
			}
			for i := 0; i < depth*2; i++ {
				b.WriteByte(' ')
			}
		}
	}
	switch n.Kind {
	case KindText:
		escapeText(b, n.Data)
	case KindComment:
		pad()
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")
	case KindElement:
		pad()
		b.WriteByte('<')
		b.WriteString(n.Name)
		for _, a := range n.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			escapeAttr(b, a.Value)
			b.WriteByte('"')
		}
		if len(n.Children) == 0 {
			b.WriteString("/>")
			return
		}
		b.WriteByte('>')
		textOnly := true
		for _, c := range n.Children {
			if c.Kind != KindText {
				textOnly = false
				break
			}
		}
		if textOnly || indent < 0 {
			for _, c := range n.Children {
				c.write(b, -1, 0)
			}
			b.WriteString("</")
			b.WriteString(n.Name)
			b.WriteByte('>')
			return
		}
		for _, c := range n.Children {
			c.write(b, indent, depth+1)
		}
		b.WriteByte('\n')
		for i := 0; i < depth*2; i++ {
			b.WriteByte(' ')
		}
		b.WriteString("</")
		b.WriteString(n.Name)
		b.WriteByte('>')
	}
}

func escapeText(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		default:
			b.WriteRune(r)
		}
	}
}

func escapeAttr(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '"':
			b.WriteString("&quot;")
		case '\n':
			b.WriteString("&#10;")
		default:
			b.WriteRune(r)
		}
	}
}
