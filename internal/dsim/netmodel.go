package dsim

import (
	"encoding/binary"
	"hash/fnv"
	"time"

	"repro/internal/transport"
)

// Per-link network models. Each model derives its value by hashing
// (seed, from, to) instead of consuming a shared PRNG, so the value a
// link reports does not depend on how many other links were evaluated
// first — a property golden-trace determinism relies on and that
// stateful RNG models lack.

// linkFrac hashes a directed link to a uniform fraction in [0, 1).
func linkFrac(seed int64, from, to transport.PeerID) float64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(from))
	h.Write([]byte{0})
	h.Write([]byte(to))
	// 53 bits of hash → float64 fraction.
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// LinkLatency builds a per-link latency model: each directed link gets
// a fixed latency in [base-jitter, base+jitter), clamped at zero.
// Plug the result into transport.WithLatencyModel.
func LinkLatency(seed int64, base, jitter time.Duration) func(from, to transport.PeerID) time.Duration {
	return func(from, to transport.PeerID) time.Duration {
		d := base
		if jitter > 0 {
			d += time.Duration((2*linkFrac(seed, from, to) - 1) * float64(jitter))
		}
		if d < 0 {
			d = 0
		}
		return d
	}
}

// LinkLoss builds a per-link loss model: each directed link drops
// messages with a fixed probability in [0, 2*mean), averaging mean
// across links (clamped to [0, 1)). Plug the result into
// transport.WithDropModel.
func LinkLoss(seed int64, mean float64) func(from, to transport.PeerID) float64 {
	return func(from, to transport.PeerID) float64 {
		p := 2 * mean * linkFrac(seed+1, from, to)
		if p >= 1 {
			p = 0.999
		}
		return p
	}
}
