package dsim

import (
	"testing"
	"time"

	"repro/internal/transport"
)

func TestVirtualClockOrdering(t *testing.T) {
	c := NewVirtualClock()
	var order []int
	c.Schedule(30*time.Millisecond, func(time.Time) { order = append(order, 3) })
	c.Schedule(10*time.Millisecond, func(time.Time) { order = append(order, 1) })
	c.Schedule(10*time.Millisecond, func(time.Time) { order = append(order, 2) }) // same instant: FIFO
	c.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if got := c.Now().Sub(time.Unix(0, 0).UTC()); got != 30*time.Millisecond {
		t.Errorf("now = %v", got)
	}
}

func TestVirtualClockEventsScheduleEvents(t *testing.T) {
	c := NewVirtualClock()
	fired := 0
	var chain func(time.Time)
	chain = func(time.Time) {
		fired++
		if fired < 5 {
			c.Schedule(time.Second, chain)
		}
	}
	c.Schedule(time.Second, chain)
	c.Run()
	if fired != 5 {
		t.Errorf("fired = %d", fired)
	}
	if got := c.Now().Sub(time.Unix(0, 0).UTC()); got != 5*time.Second {
		t.Errorf("now = %v", got)
	}
}

func TestVirtualClockRunUntil(t *testing.T) {
	c := NewVirtualClock()
	fired := 0
	c.Schedule(time.Second, func(time.Time) { fired++ })
	c.Schedule(3*time.Second, func(time.Time) { fired++ })
	c.Sleep(2 * time.Second) // RunUntil via Sleep
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if c.Pending() != 1 {
		t.Errorf("pending = %d", c.Pending())
	}
	// Sleep advances even with no events due.
	if got := c.Now().Sub(time.Unix(0, 0).UTC()); got != 2*time.Second {
		t.Errorf("now = %v", got)
	}
	c.Run()
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}

func TestVirtualClockAfter(t *testing.T) {
	c := NewVirtualClock()
	ch := c.After(time.Minute)
	select {
	case <-ch:
		t.Fatal("After fired before time advanced")
	default:
	}
	c.Sleep(time.Minute)
	select {
	case <-ch:
	default:
		t.Fatal("After did not fire at its deadline")
	}
}

func TestLinkLatencyDeterministicAndBounded(t *testing.T) {
	m := LinkLatency(7, 20*time.Millisecond, 10*time.Millisecond)
	a := m("p1", "p2")
	if b := m("p1", "p2"); b != a {
		t.Errorf("latency not stable: %v vs %v", a, b)
	}
	lo, hi := 10*time.Millisecond, 30*time.Millisecond
	saw := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		from := transport.PeerID("p" + string(rune('a'+i%26)))
		to := transport.PeerID("q" + string(rune('a'+i/26)))
		d := m(from, to)
		if d < lo || d > hi {
			t.Errorf("latency %v outside [%v, %v]", d, lo, hi)
		}
		saw[d] = true
	}
	if len(saw) < 10 {
		t.Errorf("latency model degenerate: %d distinct values", len(saw))
	}
	// A different seed reshuffles links.
	m2 := LinkLatency(8, 20*time.Millisecond, 10*time.Millisecond)
	if m2("p1", "p2") == a && m2("p1", "p3") == m("p1", "p3") && m2("p2", "p1") == m("p2", "p1") {
		t.Error("seed has no effect on latency model")
	}
}

func TestLinkLossBounds(t *testing.T) {
	m := LinkLoss(3, 0.1)
	for i := 0; i < 50; i++ {
		p := m(transport.PeerID("a"+string(rune('a'+i))), "b")
		if p < 0 || p >= 1 {
			t.Errorf("loss %v outside [0,1)", p)
		}
	}
	if LinkLoss(3, 0)("a", "b") != 0 {
		t.Error("zero mean must mean zero loss")
	}
}

func TestWallClock(t *testing.T) {
	before := time.Now()
	if Wall.Now().Before(before) {
		t.Error("wall clock behind")
	}
	select {
	case <-Wall.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Error("wall After never fired")
	}
}

func TestVirtualClockHeapStress(t *testing.T) {
	// Thousands of events with colliding instants, scheduled in a
	// deterministic pseudo-random order, must fire in (time, FIFO)
	// order through the 4-ary heap.
	c := NewVirtualClock()
	const n = 5000
	type key struct {
		at  time.Duration
		seq int
	}
	var fired []key
	perInstant := map[time.Duration]int{}
	state := uint64(12345)
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		at := time.Duration(state%97) * time.Millisecond
		seq := perInstant[at]
		perInstant[at]++
		k := key{at, seq}
		c.Schedule(at, func(time.Time) { fired = append(fired, k) })
	}
	c.Run()
	if len(fired) != n {
		t.Fatalf("fired %d of %d", len(fired), n)
	}
	for i := 1; i < n; i++ {
		a, b := fired[i-1], fired[i]
		if b.at < a.at || (b.at == a.at && b.seq != a.seq+1) {
			t.Fatalf("out of order at %d: %v then %v", i, a, b)
		}
	}
}

func TestVirtualClockScheduleBatch(t *testing.T) {
	c := NewVirtualClock()
	var order []int
	c.Schedule(15*time.Millisecond, func(time.Time) { order = append(order, 2) })
	c.ScheduleBatch([]BatchEvent{
		{After: 20 * time.Millisecond, Fn: func(time.Time) { order = append(order, 3) }},
		{After: 10 * time.Millisecond, Fn: func(time.Time) { order = append(order, 1) }},
		{After: -time.Second, Fn: func(time.Time) { order = append(order, 0) }}, // clamps to now
	})
	c.Run()
	if len(order) != 4 || order[0] != 0 || order[1] != 1 || order[2] != 2 || order[3] != 3 {
		t.Errorf("order = %v", order)
	}
	c.ScheduleBatch(nil) // no-op
}

func TestVirtualClockNowConcurrent(t *testing.T) {
	// Now() is documented lock-free and safe to call from any
	// goroutine while the drive loop runs; the race detector checks
	// the claim, and observed time must be monotone.
	c := NewVirtualClock()
	for i := 0; i < 1000; i++ {
		c.Schedule(time.Duration(i)*time.Millisecond, func(time.Time) {})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		last := c.Now()
		for i := 0; i < 10000; i++ {
			now := c.Now()
			if now.Before(last) {
				t.Error("Now went backward")
				return
			}
			last = now
		}
	}()
	c.Run()
	<-done
}

func TestVirtualClockScheduleAtPastClamps(t *testing.T) {
	c := NewVirtualClock()
	c.Sleep(time.Second)
	var at time.Time
	c.ScheduleAt(time.Unix(0, 0).UTC(), func(now time.Time) { at = now })
	c.Run()
	if got := at.Sub(time.Unix(0, 0).UTC()); got != time.Second {
		t.Errorf("past event fired at +%v, want +1s", got)
	}
}

// TestVirtualClockSteadyStateAllocs pins the event engine's free-list
// behaviour: once the heap slice has grown, a schedule/step cycle
// allocates only the caller's closure (here none — the func literal
// captures nothing and is a static value).
func TestVirtualClockSteadyStateAllocs(t *testing.T) {
	c := NewVirtualClock()
	fn := func(time.Time) {}
	for i := 0; i < 64; i++ {
		c.Schedule(time.Millisecond, fn)
	}
	c.Run()
	if n := testing.AllocsPerRun(200, func() {
		c.Schedule(time.Millisecond, fn)
		c.Step()
	}); n > 0 {
		t.Fatalf("schedule+step allocs/op = %v, want 0", n)
	}
}
