package dsim

import (
	"container/heap"
	"sync"
	"time"
)

// VirtualClock is a discrete-event scheduler: time is a number that
// jumps from one event to the next, so a scenario spanning hours of
// simulated time costs only the work of its events. Events scheduled
// for the same instant fire in scheduling order (a monotone sequence
// number breaks ties), which keeps runs deterministic.
//
// The clock is driven from one goroutine via Step, Run, RunUntil, or
// Sleep; event callbacks run inline on that goroutine and may schedule
// further events, but must not call Sleep (the drive loop is not
// reentrant).
type VirtualClock struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	events eventQueue
}

var _ Clock = (*VirtualClock)(nil)

type event struct {
	at  time.Time
	seq uint64
	fn  func(now time.Time)
}

// NewVirtualClock returns a clock starting at the epoch. The absolute
// origin is arbitrary; scenarios deal in durations since start.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: time.Unix(0, 0).UTC()}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Schedule enqueues fn to run once d has elapsed; d <= 0 runs at the
// current instant (but still through the queue, after already-pending
// events for that instant).
func (c *VirtualClock) Schedule(d time.Duration, fn func(now time.Time)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.schedLocked(c.now.Add(d), fn)
}

// ScheduleAt enqueues fn for an absolute instant. Instants in the past
// fire at the current time.
func (c *VirtualClock) ScheduleAt(at time.Time, fn func(now time.Time)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if at.Before(c.now) {
		at = c.now
	}
	c.schedLocked(at, fn)
}

func (c *VirtualClock) schedLocked(at time.Time, fn func(time.Time)) {
	c.seq++
	heap.Push(&c.events, &event{at: at, seq: c.seq, fn: fn})
}

// After implements Clock: the returned channel delivers the virtual
// time once it reaches now+d. It fires only while the queue is being
// driven, so only goroutines other than the driver may block on it.
func (c *VirtualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.Schedule(d, func(now time.Time) { ch <- now })
	return ch
}

// Sleep implements Clock by driving the queue to now+d.
func (c *VirtualClock) Sleep(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	c.mu.Unlock()
	c.RunUntil(target)
}

// Pending reports how many events are queued.
func (c *VirtualClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events.Len()
}

// Step fires the earliest pending event, advancing time to it. It
// reports whether an event ran.
func (c *VirtualClock) Step() bool {
	c.mu.Lock()
	if c.events.Len() == 0 {
		c.mu.Unlock()
		return false
	}
	ev := heap.Pop(&c.events).(*event)
	c.now = ev.at
	now := c.now
	c.mu.Unlock()
	ev.fn(now)
	return true
}

// Run drains the queue: every event, including ones scheduled by
// earlier events, fires in time order.
func (c *VirtualClock) Run() {
	for c.Step() {
	}
}

// RunUntil fires every event due at or before target, then sets the
// clock to target. Events scheduled beyond target stay queued.
func (c *VirtualClock) RunUntil(target time.Time) {
	for {
		c.mu.Lock()
		if c.events.Len() == 0 || c.events[0].at.After(target) {
			if target.After(c.now) {
				c.now = target
			}
			c.mu.Unlock()
			return
		}
		ev := heap.Pop(&c.events).(*event)
		c.now = ev.at
		now := c.now
		c.mu.Unlock()
		ev.fn(now)
	}
}

// eventQueue is a min-heap ordered by (time, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
