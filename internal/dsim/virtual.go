package dsim

import (
	"sync"
	"sync/atomic"
	"time"
)

// VirtualClock is a discrete-event scheduler: time is a number that
// jumps from one event to the next, so a scenario spanning hours of
// simulated time costs only the work of its events. Events scheduled
// for the same instant fire in scheduling order (a monotone sequence
// number breaks ties), which keeps runs deterministic.
//
// The clock is driven from one goroutine via Step, Run, RunUntil, or
// Sleep; event callbacks run inline on that goroutine and may schedule
// further events, but must not call Sleep (the drive loop is not
// reentrant).
//
// Internally events are value types in an index-free 4-ary heap —
// scheduling appends into reused slice capacity, so the steady-state
// event path costs zero allocations beyond the caller's closure. Now
// is an atomic read: it is the hottest call in a large simulation
// (every timeout arm and trace span reads it) and must not contend
// with scheduling.
type VirtualClock struct {
	// base is the arbitrary origin; virtual time is base + now nanos.
	base time.Time
	// now is nanoseconds since base, advanced only by the drive loop
	// but read from any goroutine.
	now atomic.Int64

	mu     sync.Mutex
	seq    uint64
	events []vevent
}

var _ Clock = (*VirtualClock)(nil)

// vevent is one pending callback. Value type on purpose: the heap is a
// plain slice, pops recycle slots in place (the slice's spare capacity
// is the free list), and nothing per-event escapes to the heap except
// the caller's own closure.
type vevent struct {
	at  int64 // nanos since base
	seq uint64
	fn  func(now time.Time)
}

// BatchEvent is one entry for ScheduleBatch: fn fires once After has
// elapsed from the batch's scheduling instant.
type BatchEvent struct {
	After time.Duration
	Fn    func(now time.Time)
}

// NewVirtualClock returns a clock starting at the epoch. The absolute
// origin is arbitrary; scenarios deal in durations since start.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{base: time.Unix(0, 0).UTC()}
}

func (c *VirtualClock) timeAt(nanos int64) time.Time {
	return c.base.Add(time.Duration(nanos))
}

func (c *VirtualClock) nanosAt(t time.Time) int64 {
	return int64(t.Sub(c.base))
}

// Now implements Clock. Lock-free: a single atomic load.
func (c *VirtualClock) Now() time.Time {
	return c.timeAt(c.now.Load())
}

// Schedule enqueues fn to run once d has elapsed; d <= 0 runs at the
// current instant (but still through the queue, after already-pending
// events for that instant).
func (c *VirtualClock) Schedule(d time.Duration, fn func(now time.Time)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.schedLocked(c.now.Load()+int64(d), fn)
}

// ScheduleAt enqueues fn for an absolute instant. Instants in the past
// fire at the current time.
func (c *VirtualClock) ScheduleAt(at time.Time, fn func(now time.Time)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.schedLocked(c.nanosAt(at), fn)
}

// ScheduleBatch enqueues a batch of events under one lock acquisition
// — the bulk path for workload generators that pre-plan many timers
// (per-query arrivals, per-peer refresh fleets) up front.
func (c *VirtualClock) ScheduleBatch(evs []BatchEvent) {
	if len(evs) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now.Load()
	for _, e := range evs {
		c.schedLocked(now+int64(e.After), e.Fn)
	}
}

func (c *VirtualClock) schedLocked(at int64, fn func(time.Time)) {
	if now := c.now.Load(); at < now {
		at = now
	}
	c.seq++
	c.events = append(c.events, vevent{at: at, seq: c.seq, fn: fn})
	c.siftUp(len(c.events) - 1)
}

// After implements Clock: the returned channel delivers the virtual
// time once it reaches now+d. It fires only while the queue is being
// driven, so only goroutines other than the driver may block on it.
func (c *VirtualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.Schedule(d, func(now time.Time) { ch <- now })
	return ch
}

// Sleep implements Clock by driving the queue to now+d.
func (c *VirtualClock) Sleep(d time.Duration) {
	c.RunUntil(c.timeAt(c.now.Load() + int64(d)))
}

// Pending reports how many events are queued.
func (c *VirtualClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Step fires the earliest pending event, advancing time to it. It
// reports whether an event ran.
func (c *VirtualClock) Step() bool {
	c.mu.Lock()
	if len(c.events) == 0 {
		c.mu.Unlock()
		return false
	}
	fn, at := c.popLocked()
	c.now.Store(at)
	now := c.timeAt(at)
	c.mu.Unlock()
	fn(now)
	return true
}

// Run drains the queue: every event, including ones scheduled by
// earlier events, fires in time order.
func (c *VirtualClock) Run() {
	for c.Step() {
	}
}

// RunUntil fires every event due at or before target, then sets the
// clock to target. Events scheduled beyond target stay queued.
func (c *VirtualClock) RunUntil(target time.Time) {
	targetN := c.nanosAt(target)
	for {
		c.mu.Lock()
		if len(c.events) == 0 || c.events[0].at > targetN {
			if targetN > c.now.Load() {
				c.now.Store(targetN)
			}
			c.mu.Unlock()
			return
		}
		fn, at := c.popLocked()
		c.now.Store(at)
		now := c.timeAt(at)
		c.mu.Unlock()
		fn(now)
	}
}

// popLocked removes the heap minimum. The vacated tail slot keeps its
// capacity (the implicit free list) but drops its closure so the GC
// can reclaim captured state promptly.
func (c *VirtualClock) popLocked() (func(time.Time), int64) {
	root := c.events[0]
	n := len(c.events) - 1
	c.events[0] = c.events[n]
	c.events[n].fn = nil
	c.events = c.events[:n]
	if n > 1 {
		c.siftDown(0)
	}
	return root.fn, root.at
}

// 4-ary heap ordered by (at, seq). Shallower than a binary heap —
// fewer cache lines touched per operation on the large queues a
// 10k-peer run builds — with no Push/Pop interface indirection.

func eventLess(a, b *vevent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (c *VirtualClock) siftUp(i int) {
	ev := c.events[i]
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(&ev, &c.events[p]) {
			break
		}
		c.events[i] = c.events[p]
		i = p
	}
	c.events[i] = ev
}

func (c *VirtualClock) siftDown(i int) {
	n := len(c.events)
	ev := c.events[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for j := first + 1; j < end; j++ {
			if eventLess(&c.events[j], &c.events[best]) {
				best = j
			}
		}
		if !eventLess(&c.events[best], &ev) {
			break
		}
		c.events[i] = c.events[best]
		i = best
	}
	c.events[i] = ev
}
