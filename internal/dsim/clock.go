// Package dsim provides the discrete-event substrate under the
// paper-scale experiments: a Clock abstraction over wall versus
// virtual time, an event-queue scheduler that advances virtual time
// only when events fire (so a 10k-peer hour-long scenario executes in
// seconds of real time), and deterministic per-link network models
// (latency, jitter, loss) derived by hashing rather than shared RNG
// state, so model output is independent of delivery order.
//
// Everything in internal/p2p, internal/transport, and internal/sim
// that would otherwise touch the time package goes through a Clock,
// which is what makes a scenario bit-for-bit reproducible from its
// seed: two runs issue identical message sequences and therefore
// identical trace hashes.
package dsim

import "time"

// Clock abstracts time for protocol timeouts and workload pacing.
// Production code runs on Wall; simulations run on a VirtualClock
// whose time advances only through its event queue.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that delivers the clock's time once d has
	// elapsed. On a VirtualClock the channel fires when virtual time
	// reaches the deadline, which happens only while the event queue is
	// being driven — blocking on it from the driving goroutine
	// deadlocks, so simulation code paths must not wait on After
	// (synchronous transports never do; see p2p's await fast path).
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed on this clock. On a VirtualClock
	// this runs all events due within d inline on the caller's
	// goroutine and then advances virtual time — it never blocks in
	// real time.
	Sleep(d time.Duration)
}

// Wall is the process wall clock, the default everywhere a Clock is
// accepted.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time                         { return time.Now() }
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (wallClock) Sleep(d time.Duration)                  { time.Sleep(d) }
