package errs

import (
	"errors"
	"fmt"
	"testing"
)

func TestValidCode(t *testing.T) {
	valid := []string{
		"transport.unknown_peer",
		"p2p.timeout",
		"dht.lookup_rpc",
		"index.not_found",
		"a.b.c",
		"wal.segment_v2",
	}
	for _, c := range valid {
		if !ValidCode(c) {
			t.Errorf("ValidCode(%q) = false, want true", c)
		}
	}
	invalid := []string{
		"",
		"transport",       // one segment
		"transport.",      // empty tail segment
		".unknown_peer",   // empty head segment
		"transport..peer", // empty middle segment
		"Transport.peer",  // uppercase
		"transport.1peer", // segment starts with a digit
		"transport._peer", // segment starts with an underscore
		"transport peer",  // space
		"transport:peer",  // colon is the message convention, not the code
	}
	for _, c := range invalid {
		if ValidCode(c) {
			t.Errorf("ValidCode(%q) = true, want false", c)
		}
	}
}

func TestNewPanicsOnInvalidCode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with an invalid code did not panic")
		}
	}()
	New("notacode", "boom")
}

func TestSentinelIdentity(t *testing.T) {
	sentinel := New("transport.unknown_peer", "transport: unknown peer")
	wrapped := fmt.Errorf("%w: peer-42", sentinel)
	if !errors.Is(wrapped, sentinel) {
		t.Error("errors.Is through fmt.Errorf(%%w) broken for coded sentinels")
	}
	if got := Code(wrapped); got != "transport.unknown_peer" {
		t.Errorf("Code(wrapped sentinel) = %q, want transport.unknown_peer", got)
	}
	if sentinel.Error() != "transport: unknown peer" {
		t.Errorf("Error() = %q, want the plain message", sentinel.Error())
	}
}

func TestWrapChain(t *testing.T) {
	inner := New("transport.closed", "transport: endpoint closed")
	mid := fmt.Errorf("send to n3: %w", inner)
	outer := Wrap("dht.lookup_rpc", mid, "dht: lookup rpc failed")

	if !errors.Is(outer, inner) {
		t.Error("cause not reachable through Wrap + fmt.Errorf chain")
	}
	// Outermost code wins.
	if got := Code(outer); got != "dht.lookup_rpc" {
		t.Errorf("Code(outer) = %q, want dht.lookup_rpc", got)
	}
	if got := Code(mid); got != "transport.closed" {
		t.Errorf("Code(mid) = %q, want transport.closed", got)
	}
	want := "dht: lookup rpc failed: send to n3: transport: endpoint closed"
	if outer.Error() != want {
		t.Errorf("Error() = %q, want %q", outer.Error(), want)
	}
}

func TestCodeOnUncodedError(t *testing.T) {
	if got := Code(errors.New("plain")); got != "" {
		t.Errorf("Code(plain error) = %q, want empty", got)
	}
	if got := Code(nil); got != "" {
		t.Errorf("Code(nil) = %q, want empty", got)
	}
}
