// Package errs defines structured, package-prefixed error codes for
// the whole reproduction, following the two-level convention of the
// reference systems: a machine-readable "package.name" code rides
// alongside the human-readable message, and lower layers wrap causes
// so a failure carries its full path ("transport: dial ...: ...")
// while remaining matchable by code at any depth.
//
// Codes are program constants, never data: New and Wrap panic on a
// malformed code so an invalid registration fails at init, not in an
// error path at 3 a.m. Valid codes are two or more dot-separated
// segments of lowercase letters, digits, and underscores, each
// starting with a letter ("transport.unknown_peer", "p2p.timeout").
//
// The metrics registry surfaces these codes as an error counter
// family: metrics.Registry.CountError increments errors{code=...}
// using Code to classify any error it is handed.
package errs

import "errors"

// Error is a coded error, optionally wrapping a cause.
type Error struct {
	code  string
	msg   string
	cause error
}

// New mints a coded sentinel error. Sentinels keep identity semantics:
// errors.Is(fmt.Errorf("%w: detail", sentinel), sentinel) holds, as
// with errors.New.
func New(code, msg string) *Error {
	mustValidCode(code)
	return &Error{code: code, msg: msg}
}

// Wrap attaches a code and a context message to a cause. The cause
// stays reachable through errors.Is/As, and Code(err) reports the
// outermost code on the chain.
func Wrap(code string, cause error, msg string) *Error {
	mustValidCode(code)
	return &Error{code: code, msg: msg, cause: cause}
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.cause == nil {
		return e.msg
	}
	return e.msg + ": " + e.cause.Error()
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.cause }

// Code returns this error's own code.
func (e *Error) Code() string { return e.code }

// Code classifies any error: the code of the outermost coded error on
// its Unwrap chain, or "" when the chain carries no code.
func Code(err error) string {
	var ce *Error
	if errors.As(err, &ce) {
		return ce.code
	}
	return ""
}

// mustValidCode enforces the "package.name" shape.
func mustValidCode(code string) {
	if !ValidCode(code) {
		panic("errs: invalid error code " + `"` + code + `"`)
	}
}

// ValidCode reports whether code has the required two-level shape:
// dot-separated segments of [a-z0-9_], each starting with a letter,
// at least two segments.
func ValidCode(code string) bool {
	segs := 0
	segLen := 0
	for i := 0; i < len(code); i++ {
		c := code[i]
		switch {
		case c == '.':
			if segLen == 0 {
				return false
			}
			segs++
			segLen = 0
		case c >= 'a' && c <= 'z':
			segLen++
		case (c >= '0' && c <= '9') || c == '_':
			if segLen == 0 {
				return false // segment must start with a letter
			}
			segLen++
		default:
			return false
		}
	}
	return segLen > 0 && segs >= 1
}
