// Package schemagen implements the paper's §VI future-work tool: "a
// web-based tool for generating XML Schema ... to hide the underlying
// XML completely from the user." A community designer lists fields in
// a one-line-each plain syntax; the package emits a valid community
// schema (with searchable/attachment markers) ready for
// core.CommunitySpec.
//
// Field syntax, one per line:
//
//	name            type        flags
//	title           string      searchable
//	genre           enum(jazz,rock,folk)  searchable
//	year            integer     optional searchable
//	tracks          string      repeated
//	audio           anyURI      optional attachment
//
// Types: string, integer, decimal, boolean, date, anyURI, or
// enum(v1,v2,...). Flags: searchable, optional, repeated, attachment.
package schemagen

import (
	"errors"
	"fmt"
	"strings"
)

// Field is one declared field of the schema being built.
type Field struct {
	Name       string
	Type       string   // string|integer|decimal|boolean|date|anyURI
	Enum       []string // non-empty for enum fields
	Searchable bool
	Optional   bool
	Repeated   bool
	Attachment bool
}

// Spec is the input to Generate.
type Spec struct {
	// RootName is the shared object's element name ("song", "recipe").
	RootName string
	Fields   []Field
}

// Errors.
var (
	ErrNoRoot   = errors.New("schemagen: root element name required")
	ErrNoFields = errors.New("schemagen: at least one field required")
	ErrBadName  = errors.New("schemagen: invalid name")
	ErrBadType  = errors.New("schemagen: unsupported type")
	ErrDupField = errors.New("schemagen: duplicate field")
)

var simpleTypes = map[string]string{
	"string":  "xsd:string",
	"integer": "xsd:integer",
	"decimal": "xsd:decimal",
	"boolean": "xsd:boolean",
	"date":    "xsd:date",
	"anyURI":  "xsd:anyURI",
	"anyuri":  "xsd:anyURI",
}

// Generate emits the XML Schema text for a spec.
func Generate(spec Spec) (string, error) {
	if !validName(spec.RootName) {
		if spec.RootName == "" {
			return "", ErrNoRoot
		}
		return "", fmt.Errorf("%w: %q", ErrBadName, spec.RootName)
	}
	if len(spec.Fields) == 0 {
		return "", ErrNoFields
	}
	seen := map[string]bool{}
	var body strings.Builder
	var enums strings.Builder
	for _, f := range spec.Fields {
		if !validName(f.Name) {
			return "", fmt.Errorf("%w: %q", ErrBadName, f.Name)
		}
		if seen[f.Name] {
			return "", fmt.Errorf("%w: %q", ErrDupField, f.Name)
		}
		seen[f.Name] = true
		var typeName string
		switch {
		case len(f.Enum) > 0:
			typeName = f.Name + "Type"
			fmt.Fprintf(&enums, " <simpleType name=%q>\n  <restriction base=\"string\">\n", typeName)
			for _, v := range f.Enum {
				fmt.Fprintf(&enums, "   <enumeration value=%q/>\n", v)
			}
			enums.WriteString("  </restriction>\n </simpleType>\n")
		default:
			xsdType, ok := simpleTypes[f.Type]
			if !ok {
				return "", fmt.Errorf("%w: %q (field %s)", ErrBadType, f.Type, f.Name)
			}
			typeName = xsdType
		}
		fmt.Fprintf(&body, "    <element name=%q type=%q", f.Name, typeName)
		if f.Optional {
			body.WriteString(` minOccurs="0"`)
		}
		if f.Repeated {
			body.WriteString(` maxOccurs="unbounded"`)
		}
		if f.Searchable {
			body.WriteString(` up2p:searchable="true"`)
		}
		if f.Attachment {
			body.WriteString(` up2p:attachment="true"`)
		}
		body.WriteString("/>\n")
	}
	var out strings.Builder
	out.WriteString(`<?xml version="1.0"?>` + "\n")
	out.WriteString(`<schema xmlns="http://www.w3.org/2001/XMLSchema" xmlns:up2p="http://up2p.carleton.ca/ns/community">` + "\n")
	fmt.Fprintf(&out, " <element name=%q>\n  <complexType>\n   <sequence>\n", spec.RootName)
	out.WriteString(body.String())
	out.WriteString("   </sequence>\n  </complexType>\n </element>\n")
	out.WriteString(enums.String())
	out.WriteString("</schema>")
	return out.String(), nil
}

// ParseSpec parses the plain-text field syntax described in the
// package comment. The first non-empty line names the root element;
// each following line declares one field.
func ParseSpec(src string) (Spec, error) {
	spec := Spec{}
	for lineNo, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if spec.RootName == "" {
			spec.RootName = line
			continue
		}
		f, err := parseFieldLine(line)
		if err != nil {
			return Spec{}, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		spec.Fields = append(spec.Fields, f)
	}
	if spec.RootName == "" {
		return Spec{}, ErrNoRoot
	}
	if len(spec.Fields) == 0 {
		return Spec{}, ErrNoFields
	}
	return spec, nil
}

func parseFieldLine(line string) (Field, error) {
	parts := strings.Fields(line)
	if len(parts) < 2 {
		return Field{}, fmt.Errorf("schemagen: field line needs name and type: %q", line)
	}
	f := Field{Name: parts[0]}
	typ := parts[1]
	if strings.HasPrefix(typ, "enum(") && strings.HasSuffix(typ, ")") {
		inner := typ[len("enum(") : len(typ)-1]
		for _, v := range strings.Split(inner, ",") {
			if v = strings.TrimSpace(v); v != "" {
				f.Enum = append(f.Enum, v)
			}
		}
		if len(f.Enum) == 0 {
			return Field{}, fmt.Errorf("schemagen: empty enum in %q", line)
		}
	} else {
		f.Type = typ
	}
	for _, flag := range parts[2:] {
		switch flag {
		case "searchable":
			f.Searchable = true
		case "optional":
			f.Optional = true
		case "repeated":
			f.Repeated = true
		case "attachment":
			f.Attachment = true
		default:
			return Field{}, fmt.Errorf("schemagen: unknown flag %q", flag)
		}
	}
	return f, nil
}

// GenerateFromText is ParseSpec followed by Generate.
func GenerateFromText(src string) (string, error) {
	spec, err := ParseSpec(src)
	if err != nil {
		return "", err
	}
	return Generate(spec)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case i > 0 && (r >= '0' && r <= '9' || r == '-' || r == '.'):
		default:
			return false
		}
	}
	return true
}
