package schemagen

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/stylegen"
	"repro/internal/xsd"
)

const bookSpec = `
# a book-sharing community
book
title      string   searchable
author     string   searchable repeated
language   enum(en,fr,de)  searchable
pages      integer  optional
published  date     optional searchable
scan       anyURI   optional attachment
`

func TestGenerateFromText(t *testing.T) {
	src, err := GenerateFromText(bookSpec)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	schema, err := xsd.ParseString(src)
	if err != nil {
		t.Fatalf("generated schema invalid: %v\n%s", err, src)
	}
	if schema.Root.Name != "book" {
		t.Errorf("root = %q", schema.Root.Name)
	}
	fields := schema.Fields()
	if len(fields) != 6 {
		t.Fatalf("fields = %d, want 6", len(fields))
	}
	byName := map[string]xsd.Field{}
	for _, f := range fields {
		byName[f.Path] = f
	}
	if !byName["title"].Searchable {
		t.Error("title not searchable")
	}
	if !byName["author"].Repeated {
		t.Error("author not repeated")
	}
	if got := byName["language"].Enum; len(got) != 3 || got[0] != "en" {
		t.Errorf("language enum = %v", got)
	}
	if !byName["pages"].Optional || byName["pages"].Builtin != xsd.BuiltinInteger {
		t.Errorf("pages = %+v", byName["pages"])
	}
	if !byName["scan"].Attachment {
		t.Error("scan not attachment")
	}
	search := schema.SearchableFields()
	if len(search) != 4 {
		t.Errorf("searchable = %d, want 4", len(search))
	}
}

// TestGeneratedSchemaDrivesWholePipeline: the §VI tool's output plugs
// straight into a community — forms, indexing, validation.
func TestGeneratedSchemaDrivesWholePipeline(t *testing.T) {
	src, err := GenerateFromText(bookSpec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCommunity(core.CommunitySpec{Name: "books", SchemaSrc: src})
	if err != nil {
		t.Fatalf("community from generated schema: %v", err)
	}
	form, err := c.CreateFormHTML()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`name="title"`, `<select name="language"`, `<option value="fr">`} {
		if !strings.Contains(form, want) {
			t.Errorf("form missing %q", want)
		}
	}
	obj, err := stylegen.BuildObject(c.Schema, map[string][]string{
		"title":    {"Le Petit Prince"},
		"author":   {"Antoine de Saint-Exupéry"},
		"language": {"fr"},
		"pages":    {"96"},
	})
	if err != nil {
		t.Fatalf("build object: %v", err)
	}
	ix, err := c.Indexer()
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := ix.Extract(obj)
	if err != nil {
		t.Fatal(err)
	}
	if attrs.Get("title") != "Le Petit Prince" {
		t.Errorf("indexed attrs = %v", attrs)
	}
	if _, present := attrs["pages"]; present {
		t.Error("unsearchable pages indexed")
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"root only", "book"},
		{"missing type", "book\ntitle"},
		{"bad flag", "book\ntitle string shiny"},
		{"empty enum", "book\nl enum() searchable"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := GenerateFromText(c.src); err == nil {
				t.Errorf("accepted %q", c.src)
			}
		})
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{RootName: "", Fields: []Field{{Name: "a", Type: "string"}}}); !errors.Is(err, ErrNoRoot) {
		t.Errorf("no root err = %v", err)
	}
	if _, err := Generate(Spec{RootName: "x"}); !errors.Is(err, ErrNoFields) {
		t.Errorf("no fields err = %v", err)
	}
	if _, err := Generate(Spec{RootName: "x", Fields: []Field{{Name: "1bad", Type: "string"}}}); err == nil {
		t.Error("bad field name accepted")
	}
	if _, err := Generate(Spec{RootName: "x", Fields: []Field{{Name: "a", Type: "blob"}}}); !errors.Is(err, ErrBadType) {
		t.Errorf("bad type err = %v", err)
	}
	if _, err := Generate(Spec{RootName: "x", Fields: []Field{
		{Name: "a", Type: "string"}, {Name: "a", Type: "string"},
	}}); !errors.Is(err, ErrDupField) {
		t.Errorf("dup field err = %v", err)
	}
	if _, err := Generate(Spec{RootName: "bad name", Fields: []Field{{Name: "a", Type: "string"}}}); err == nil {
		t.Error("root with space accepted")
	}
}

// Property: any spec built from safe names and types generates a
// schema our own xsd package accepts.
func TestPropertyGeneratedSchemasParse(t *testing.T) {
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	types := []string{"string", "integer", "decimal", "boolean", "date", "anyURI"}
	f := func(rootIdx, n, typeSeed, flagSeed uint8) bool {
		spec := Spec{RootName: names[int(rootIdx)%len(names)]}
		count := int(n%4) + 1
		for i := 0; i < count; i++ {
			fl := Field{
				Name:       names[(int(typeSeed)+i)%len(names)] + string(rune('a'+i)),
				Type:       types[(int(typeSeed)+i)%len(types)],
				Searchable: flagSeed&1 != 0,
				Optional:   flagSeed&2 != 0,
				Repeated:   flagSeed&4 != 0,
			}
			spec.Fields = append(spec.Fields, fl)
		}
		src, err := Generate(spec)
		if err != nil {
			return false
		}
		schema, err := xsd.ParseString(src)
		if err != nil {
			return false
		}
		return len(schema.Fields()) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
