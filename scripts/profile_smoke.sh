#!/bin/sh
# profile-smoke: boot an up2pd daemon with the pprof debug listener
# enabled, assert the profiling surface answers on the debug address
# only, and pull one real profile. Run via `make profile-smoke`.
set -eu

bin="$1"
p2p=127.0.0.1:7975
http=127.0.0.1:8975
debug=127.0.0.1:9975
pid=
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null' EXIT

wait_health() {
    i=0
    until curl -sf "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "profile-smoke: daemon never served /healthz on $1" >&2
            exit 1
        fi
        sleep 0.1
    done
}

"$bin" -mode gnutella -p2p "$p2p" -http "$http" -debug-addr "$debug" -seed designpatterns &
pid=$!
wait_health "$http"

echo "== /debug/pprof/ on $debug"
index=$(curl -sf "http://$debug/debug/pprof/")
echo "$index" | grep -q 'goroutine'
echo "$index" | grep -q 'heap'

# A real profile must download and be non-empty (gzip'd protobuf).
curl -sf "http://$debug/debug/pprof/heap" -o /tmp/up2pd-heap.pprof
[ -s /tmp/up2pd-heap.pprof ]
rm -f /tmp/up2pd-heap.pprof

goroutines=$(curl -sf "http://$debug/debug/pprof/goroutine?debug=1" | head -1)
echo "$goroutines"
echo "$goroutines" | grep -q '^goroutine profile:'

# The public ops address must NOT expose pprof: profiling stays on the
# operator-only listener.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$http/debug/pprof/")
if [ "$code" = "200" ]; then
    echo "profile-smoke: pprof leaked onto the public HTTP address" >&2
    exit 1
fi

kill "$pid"
wait "$pid" || true
pid=

echo "profile-smoke: OK"
