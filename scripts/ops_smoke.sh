#!/bin/sh
# ops-smoke: boot an up2pd daemon, scrape the ops surface, and assert
# the output is well-formed. Run via `make ops-smoke`.
set -eu

bin="$1"
p2p=127.0.0.1:7971
http=127.0.0.1:8971

"$bin" -mode gnutella -p2p "$p2p" -http "$http" -seed designpatterns &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

# Wait for the ops surface to come up (5s budget).
i=0
until curl -sf "http://$http/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "ops-smoke: daemon never served /healthz" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== /healthz"
health=$(curl -sf "http://$http/healthz")
echo "$health"
echo "$health" | grep -q '"status": "ok"'
echo "$health" | grep -q '"mode": "gnutella"'
echo "$health" | jq -e '.docs >= 1' >/dev/null

echo "== /metrics (Prometheus text)"
prom=$(curl -sf "http://$http/metrics")
echo "$prom" | head -8
echo "$prom" | grep -q '^# TYPE up2p_index_docs gauge$'
echo "$prom" | grep -q '^up2p_index_docs [1-9]'
echo "$prom" | grep -q '^up2p_p2p_publishes{protocol="gnutella"} [1-9]'
echo "$prom" | grep -q '_bucket{le="+Inf"}'

echo "== /metrics?format=json"
json=$(curl -sf "http://$http/metrics?format=json")
echo "$json" | jq -e '."index.docs" >= 1' >/dev/null
echo "$json" | jq -e '."p2p.publishes{protocol=gnutella}" >= 1' >/dev/null

echo "ops-smoke: OK"
