#!/bin/sh
# ops-smoke: boot an up2pd daemon, scrape the ops surface, and assert
# the output is well-formed; then prove that a SIGTERM'd daemon
# persists its state and a restart restores it. Run via
# `make ops-smoke`.
set -eu

bin="$1"
p2p=127.0.0.1:7971
http=127.0.0.1:8971
pid=
state=
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null; [ -n "$state" ] && rm -rf "$state"' EXIT

# wait_health blocks until $1 serves /healthz (5s budget).
wait_health() {
    i=0
    until curl -sf "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "ops-smoke: daemon never served /healthz on $1" >&2
            exit 1
        fi
        sleep 0.1
    done
}

"$bin" -mode gnutella -p2p "$p2p" -http "$http" -seed designpatterns &
pid=$!
wait_health "$http"

echo "== /healthz"
health=$(curl -sf "http://$http/healthz")
echo "$health"
echo "$health" | grep -q '"status": "ok"'
echo "$health" | grep -q '"mode": "gnutella"'
echo "$health" | jq -e '.docs >= 1' >/dev/null

echo "== /metrics (Prometheus text)"
prom=$(curl -sf "http://$http/metrics")
echo "$prom" | head -8
echo "$prom" | grep -q '^# TYPE up2p_index_docs gauge$'
echo "$prom" | grep -q '^up2p_index_docs [1-9]'
echo "$prom" | grep -q '^up2p_p2p_publishes{protocol="gnutella"} [1-9]'
echo "$prom" | grep -q '_bucket{le="+Inf"}'

echo "== /metrics?format=json"
json=$(curl -sf "http://$http/metrics?format=json")
echo "$json" | jq -e '."index.docs" >= 1' >/dev/null
echo "$json" | jq -e '."p2p.publishes{protocol=gnutella}" >= 1' >/dev/null

kill "$pid"
wait "$pid" || true
pid=

echo "== SIGTERM persistence round trip (WAL)"
state=$(mktemp -d)
p2p2=127.0.0.1:7972
http2=127.0.0.1:8972

"$bin" -mode gnutella -p2p "$p2p2" -http "$http2" -seed designpatterns -state "$state" -wal &
pid=$!
wait_health "$http2"
docs=$(curl -sf "http://$http2/healthz" | jq -e '.docs')
[ "$docs" -ge 1 ]

# SIGTERM (what systemd/docker send) must save state before exit.
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "ops-smoke: daemon did not exit on SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
pid=
[ -f "$state/servent.json" ] || { echo "ops-smoke: no servent.json after TERM" >&2; exit 1; }
[ -f "$state/wal/snapshot.json" ] || { echo "ops-smoke: no wal snapshot after TERM" >&2; exit 1; }

# Restart without -seed on fresh ports: every object must come back.
"$bin" -mode gnutella -p2p 127.0.0.1:7973 -http 127.0.0.1:8973 -state "$state" -wal &
pid=$!
wait_health 127.0.0.1:8973
restored=$(curl -sf "http://127.0.0.1:8973/healthz" | jq -e '.docs')
if [ "$restored" -ne "$docs" ]; then
    echo "ops-smoke: restored $restored docs, want $docs" >&2
    exit 1
fi
echo "persisted and restored $docs objects across SIGTERM"

# Let the restarted daemon shut down before the trap removes its
# state directory out from under the final compaction.
kill -TERM "$pid"
wait "$pid" || true
pid=

echo "ops-smoke: OK"
