#!/bin/sh
# trace-smoke: boot an up2pd daemon with full trace sampling, issue a
# traced query through the web search path, and assert /debug/traces
# serves a well-formed span tree for it. Run via `make trace-smoke`.
set -eu

bin="$1"
p2p=127.0.0.1:7974
http=127.0.0.1:8974
pid=
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null' EXIT

wait_health() {
    i=0
    until curl -sf "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "trace-smoke: daemon never served /healthz on $1" >&2
            exit 1
        fi
        sleep 0.1
    done
}

"$bin" -mode gnutella -p2p "$p2p" -http "$http" -seed designpatterns -trace-sample 1 &
pid=$!
wait_health "$http"

# Before any query, the trace surface must be up and empty-but-valid.
empty=$(curl -sf "http://$http/debug/traces")
echo "$empty" | jq -e '.count == 0 and .traces == []' >/dev/null

# A web search roots a trace in the servent and propagates it into the
# protocol layer. The root community always exists and holds the seeded
# community document, so searching it needs no discovered state.
seeded=$(curl -sf "http://$http/healthz" | jq -r '.docs')
[ "$seeded" -ge 1 ]
curl -sfG "http://$http/search" --data-urlencode "community=up2p-root" --data-urlencode "filter=(name=*)" >/dev/null

echo "== /debug/traces (JSON)"
traces=$(curl -sf "http://$http/debug/traces?order=slowest&n=5")
echo "$traces" | jq '{order, count, root: .traces[0].root.op, spans: .traces[0].spans}'
echo "$traces" | jq -e '.order == "slowest"' >/dev/null
echo "$traces" | jq -e '.count >= 1' >/dev/null
echo "$traces" | jq -e '.traces[0].root.op == "query"' >/dev/null
echo "$traces" | jq -e '.traces[0].spans >= 1' >/dev/null
echo "$traces" | jq -e '.traces[0].root.duration_us >= 0' >/dev/null
# Every span the tree reports must actually be reachable from the root:
# count the nodes in the rendered tree and compare with the span count.
echo "$traces" | jq -e '.traces[0] | .spans == ([.root | recurse(.children[]?)] | length)' >/dev/null

echo "== /debug/traces?format=text"
text=$(curl -sf "http://$http/debug/traces?format=text&n=1")
echo "$text"
echo "$text" | grep -q '^trace [0-9a-f]\{16\}  spans='
echo "$text" | grep -q 'query'

kill "$pid"
wait "$pid" || true
pid=

echo "trace-smoke: OK"
