// Package repro's root benchmark suite: one testing.B benchmark per
// reproduced figure/table (see DESIGN.md §4 and EXPERIMENTS.md). The
// F-benchmarks exercise the per-figure pipeline operation; the
// E-benchmarks run the corresponding experiment workload. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/p2p"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/stylegen"
	"repro/internal/xsd"
)

// BenchmarkF1ObjectPipeline measures the Fig. 1 loop: build a
// schema-valid object from form values, validate, extract indexed
// attributes, render the view.
func BenchmarkF1ObjectPipeline(b *testing.B) {
	schema := xsd.MustParseString(corpus.PatternSchemaSrc)
	ix, err := stylegen.NewIndexer(schema)
	if err != nil {
		b.Fatal(err)
	}
	values := map[string][]string{
		"name":           {"Observer"},
		"classification": {"behavioral"},
		"intent":         {"Define a one-to-many dependency between objects"},
		"keywords":       {"notification"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj, err := stylegen.BuildObject(schema, values)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ix.Extract(obj); err != nil {
			b.Fatal(err)
		}
		if _, err := stylegen.ViewHTML(obj); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF2FormGeneration measures Fig. 2's generative step: schema
// through the default create stylesheet to an HTML form.
func BenchmarkF2FormGeneration(b *testing.B) {
	schema := xsd.MustParseString(corpus.PatternSchemaSrc)
	sheet := stylegen.Defaults().Create
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sheet.Apply(schema.Doc()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF3CommunityValidate measures Fig. 3 enforcement: validating
// a community object against the root schema.
func BenchmarkF3CommunityValidate(b *testing.B) {
	root := core.RootCommunity()
	c, err := core.NewCommunity(core.CommunitySpec{Name: "mp3", SchemaSrc: corpus.SongSchemaSrc})
	if err != nil {
		b.Fatal(err)
	}
	obj, _ := c.Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := root.Schema.Validate(obj); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1CommunityDiscovery measures one full
// discover-and-join (root search + community download) on an 8-peer
// centralized network.
func BenchmarkE1CommunityDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := sim.NewCluster(sim.Config{Peers: 8, Protocol: sim.Centralized, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.SeedCommunity(0, core.CommunitySpec{Name: "m", SchemaSrc: corpus.SongSchemaSrc}); err != nil {
			b.Fatal(err)
		}
		if n, err := c.DiscoverAndJoinAll("m", 7); err != nil || n != 8 {
			b.Fatalf("joined %d: %v", n, err)
		}
	}
}

// BenchmarkE2MetadataRecall measures metadata query evaluation over
// the indexed 115-pattern corpus.
func BenchmarkE2MetadataRecall(b *testing.B) {
	schema := xsd.MustParseString(corpus.PatternSchemaSrc)
	ix, err := stylegen.NewIndexer(schema)
	if err != nil {
		b.Fatal(err)
	}
	store := index.NewStore()
	for i, o := range corpus.DesignPatterns(115, 21).Objects {
		attrs, err := ix.Extract(o.Doc)
		if err != nil {
			b.Fatal(err)
		}
		if err := store.Put(&index.Document{
			ID: index.DocID(fmt.Sprintf("p%03d", i)), CommunityID: "patterns", Attrs: attrs,
		}); err != nil {
			b.Fatal(err)
		}
	}
	f := query.MustParse("(&(classification=behavioral)(keywords=notification))")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rs := store.Search("patterns", f, 0); len(rs) == 0 {
			b.Fatal("no results")
		}
	}
}

// benchProtocolQuery measures one community-wide query on an N-peer
// network of the given protocol (the E3 unit operation).
func benchProtocolQuery(b *testing.B, proto sim.Protocol, peers, ttl int) {
	b.Helper()
	c, err := sim.NewCluster(sim.Config{Peers: peers, Protocol: proto, Degree: 4, Seed: 31})
	if err != nil {
		b.Fatal(err)
	}
	comm, err := c.SeedCommunity(0, core.CommunitySpec{Name: "patterns", SchemaSrc: corpus.PatternSchemaSrc})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.DiscoverAndJoinAll("patterns", peers); err != nil {
		b.Fatal(err)
	}
	if _, err := c.PublishRoundRobin(comm.ID, corpus.DesignPatterns(23, 31).Objects); err != nil {
		b.Fatal(err)
	}
	f := query.MustParse("(classification=behavioral)")
	base := c.Metrics()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SearchFrom(i%peers, comm.ID, f, p2p.SearchOptions{TTL: ttl}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	msgs := c.Metrics().Delta(base).Counter("transport.msgs_delivered")
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/query")
}

// BenchmarkE3ProtocolCost sweeps the E3 grid: protocol x network size.
func BenchmarkE3ProtocolCost(b *testing.B) {
	for _, proto := range []sim.Protocol{sim.Centralized, sim.Gnutella} {
		for _, peers := range []int{8, 32} {
			b.Run(fmt.Sprintf("%s/peers=%d", proto, peers), func(b *testing.B) {
				benchProtocolQuery(b, proto, peers, 7)
			})
		}
	}
}

// BenchmarkE4IndexSelectivity measures indexing-transform extraction,
// the per-object cost that the searchable-field marking bounds.
func BenchmarkE4IndexSelectivity(b *testing.B) {
	schema := xsd.MustParseString(corpus.PatternSchemaSrc)
	ix, err := stylegen.NewIndexer(schema)
	if err != nil {
		b.Fatal(err)
	}
	obj := corpus.DesignPatterns(1, 1).Objects[0].Doc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Extract(obj); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5Replication measures one download-replication (Retrieve +
// republish), the operation whose repetition drives availability.
func BenchmarkE5Replication(b *testing.B) {
	c, err := sim.NewCluster(sim.Config{Peers: 4, Protocol: sim.Gnutella, Degree: 3, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	comm, err := c.SeedCommunity(0, core.CommunitySpec{Name: "m", SchemaSrc: corpus.PatternSchemaSrc})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.DiscoverAndJoinAll("m", 7); err != nil {
		b.Fatal(err)
	}
	obj := corpus.DesignPatterns(1, 5).Objects[0]
	docID, err := c.Servents[0].Publish(comm.ID, obj.Doc.Clone(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate downloader; store dedup makes repeats cheap but the
		// network path is exercised every time.
		sv := c.Servents[1+i%3]
		if _, err := sv.Retrieve(docID, c.Servents[0].PeerID()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6PipelineThroughput measures the full servent hot path:
// schema validation + indexing + publish into a local store.
func BenchmarkE6PipelineThroughput(b *testing.B) {
	schema := xsd.MustParseString(corpus.PatternSchemaSrc)
	ix, err := stylegen.NewIndexer(schema)
	if err != nil {
		b.Fatal(err)
	}
	store := index.NewStore()
	objs := corpus.DesignPatterns(100, 6).Objects
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := objs[i%len(objs)]
		if err := schema.Validate(o.Doc); err != nil {
			b.Fatal(err)
		}
		attrs, err := ix.Extract(o.Doc)
		if err != nil {
			b.Fatal(err)
		}
		if err := store.Put(&index.Document{
			ID: index.DocID(fmt.Sprintf("d%d", i%len(objs))), CommunityID: "c", Attrs: attrs,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7PatternCaseStudy measures a rich conjunctive query on the
// §V case-study deployment.
func BenchmarkE7PatternCaseStudy(b *testing.B) {
	c, err := sim.NewCluster(sim.Config{Peers: 6, Protocol: sim.Centralized, Seed: 71})
	if err != nil {
		b.Fatal(err)
	}
	comm, err := c.SeedCommunity(0, core.CommunitySpec{Name: "dp", SchemaSrc: corpus.PatternSchemaSrc})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.DiscoverAndJoinAll("dp", 7); err != nil {
		b.Fatal(err)
	}
	if _, err := c.PublishRoundRobin(comm.ID, corpus.DesignPatterns(115, 21).Objects); err != nil {
		b.Fatal(err)
	}
	f := query.MustParse("(&(classification=behavioral)(participants=Subject))")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SearchFrom(i%6, comm.ID, f, p2p.SearchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8ProtocolIndependence measures the same query on both
// protocols back to back (the E8 parity workload's unit op).
func BenchmarkE8ProtocolIndependence(b *testing.B) {
	for _, proto := range []sim.Protocol{sim.Centralized, sim.Gnutella} {
		b.Run(proto.String(), func(b *testing.B) {
			benchProtocolQuery(b, proto, 6, 7)
		})
	}
}

// BenchmarkAblationIndexAcceleration contrasts an equality query
// (accelerated through the inverted index) with a substring query
// (full community scan) at 10k documents: the design choice DESIGN.md
// §5 calls out.
func BenchmarkAblationIndexAcceleration(b *testing.B) {
	store := index.NewStore()
	for i := 0; i < 10000; i++ {
		attrs := query.Attrs{}
		attrs.Add("title", fmt.Sprintf("pattern number %d", i))
		attrs.Add("classification", []string{"creational", "structural", "behavioral"}[i%3])
		if err := store.Put(&index.Document{
			ID: index.DocID(fmt.Sprintf("d%05d", i)), CommunityID: "c", Attrs: attrs,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("indexed-equality", func(b *testing.B) {
		f := query.MustParse("(title=pattern number 5000)")
		for i := 0; i < b.N; i++ {
			if rs := store.Search("c", f, 0); len(rs) != 1 {
				b.Fatalf("hits = %d", len(rs))
			}
		}
	})
	b.Run("scan-substring", func(b *testing.B) {
		f := query.MustParse("(title~=number 5000)")
		for i := 0; i < b.N; i++ {
			if rs := store.Search("c", f, 0); len(rs) != 1 {
				b.Fatalf("hits = %d", len(rs))
			}
		}
	})
}

// BenchmarkAblationProtocolFastTrack places the super-peer hybrid
// between the two extremes of E3 (same workload as BenchmarkE3).
func BenchmarkAblationProtocolFastTrack(b *testing.B) {
	benchProtocolQuery(b, sim.FastTrack, 32, 7)
}

// BenchmarkExperimentTables runs the full table generators themselves
// (the artifact EXPERIMENTS.md records); heavyweight, hence sub-benches
// only over the cheap ones.
func BenchmarkExperimentTables(b *testing.B) {
	for _, id := range []string{"F1", "F2", "F3"} {
		r, ok := bench.ByID(id)
		if !ok {
			b.Fatalf("missing %s", id)
		}
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
